(* A server-side session: the per-client state object carrying the
   declared isolation level and the open-transaction handle, pumped by
   the scheduler one request at a time.

   The session is the bridge between the wire protocol and the pool's
   parked-transaction interface ({!Runtime.Pool.exec_step}): each
   in-transaction request becomes one engine operation. A step that
   blocks does not sleep the worker — the session keeps the operation as
   [pending], asks its backoff for a delay, and parks; the scheduler
   resumes it when the timer expires and the pending operation is
   retried. Everything the batch pool keeps on a worker's stack —
   attempt numbers, step sequence (fault-plan coordinates), accumulated
   wait time — lives in the session record instead.

   A session is only ever pumped by one worker at a time (scheduler
   invariant), so its mutable state needs no lock; only the [inbox] is
   shared with the connection's reader thread, under [inbox_m]. *)

module Pool = Runtime.Pool
module Level = Isolation.Level
module Engine = Core.Engine
module Program = Core.Program

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The open transaction, when there is one. *)
type txn = {
  tid : int;
  name : string;
  level : Level.t;      (* level pinned at BEGIN (SET LEVEL mid-txn waits) *)
  attempt : int;
  start_ns : int;
  mutable seq : int;     (* step-consultation counter (fault coordinates) *)
  mutable wait_ns : int; (* parked time charged to this transaction *)
}

(* An operation that blocked and parks for retry: the request id to
   answer, the engine op to re-step, and the response builder to run on
   success. *)
type pending = {
  preq : int;
  pop : Program.op;
  respond : unit -> Protocol.response;
  mutable tries : int;
  mutable parked_at : int; (* ns stamp when the session parked *)
}

type t = {
  sid : int;  (* wire session id, scoped to the connection *)
  gid : int;  (* global session index: the journal's job id *)
  conn : int;
  exec : Pool.exec;
  max_op_retries : int;
  draining : bool Atomic.t;
  lookup_pred : Protocol.pred -> (Storage.Predicate.t, string) result;
  send : req:int -> Protocol.response -> unit;
  emit : tid:int -> Trace.Event.kind -> unit;
  on_close : t -> unit; (* deregister from the connection's table *)
  bo : Runtime.Backoff.t;
  inbox_m : Mutex.t;
  inbox : (int * Protocol.request) Queue.t;
  mutable level : Level.t;
  mutable txn : txn option;
  mutable pending : pending option;
  mutable txns : int;   (* transactions completed (either way) *)
  mutable closed : bool;
  mutable task : Scheduler.task option; (* backpatched after creation *)
}

let create ~sid ~gid ~conn ~exec ~max_op_retries ~draining ~lookup_pred ~send
    ~emit ~on_close ~level ~seed =
  {
    sid;
    gid;
    conn;
    exec;
    max_op_retries;
    draining;
    lookup_pred;
    send;
    emit;
    on_close;
    bo =
      Runtime.Backoff.create
        ~rng:(Random.State.make [| 0x5e55; seed; gid |])
        Runtime.Backoff.default;
    inbox_m = Mutex.create ();
    inbox = Queue.create ();
    level;
    txn = None;
    pending = None;
    txns = 0;
    closed = false;
    task = None;
  }

let sid t = t.sid
let gid t = t.gid
let conn t = t.conn
let txns t = t.txns
let task t = Option.get t.task
let set_task t task = t.task <- Some task

(* Reader-thread side: queue a request. Returns [false] when the session
   is closed (the caller answers with an error itself). *)
let offer t ~req request =
  Mutex.lock t.inbox_m;
  let accepted = not t.closed in
  if accepted then Queue.push (req, request) t.inbox;
  Mutex.unlock t.inbox_m;
  accepted

let pop_inbox t =
  Mutex.lock t.inbox_m;
  let r = Queue.take_opt t.inbox in
  Mutex.unlock t.inbox_m;
  r

(* {2 Transaction bookkeeping} *)

let finish_txn t ~worker (txn : txn) =
  t.txn <- None;
  t.pending <- None;
  t.txns <- t.txns + 1;
  Pool.exec_finish t.exec ~worker ~tid:txn.tid ~job:t.gid ~name:txn.name
    ~level:txn.level ~attempt:txn.attempt ~start_ns:txn.start_ns
    ~wait_ns:txn.wait_ns

let outcome_response = function
  | Runtime.Recorder.Committed -> Protocol.Committed
  | Runtime.Recorder.Aborted reason ->
    Protocol.Aborted (Runtime.Metrics.abort_reason_slug reason)

(* Abort whatever is open (client vanished or server force-drains):
   journal the attempt, send nothing. *)
let force_close t ~worker =
  (match t.txn with
  | Some txn ->
    Pool.exec_abort t.exec ~tid:txn.tid;
    ignore (finish_txn t ~worker txn)
  | None -> ());
  if not t.closed then begin
    Mutex.lock t.inbox_m;
    t.closed <- true;
    Queue.clear t.inbox;
    Mutex.unlock t.inbox_m;
    t.emit ~tid:0 (Trace.Event.Session_close { session = t.gid; txns = t.txns });
    t.on_close t
  end

(* {2 Stepping one engine operation}

   Outcome: [`Done] (responded — continue with the inbox) or
   [`Park due_ns] (blocked; the pending record holds the retry). *)

let step_pending t ~worker (txn : txn) (p : pending) =
  let seq = txn.seq in
  txn.seq <- seq + 1;
  match
    Pool.exec_step ~level:txn.level t.exec ~worker ~tid:txn.tid ~seq
      ~start_ns:txn.start_ns p.pop
  with
  | Pool.Session_progress ->
    Runtime.Backoff.reset t.bo;
    t.pending <- None;
    (* A Commit/Abort op progresses into a terminal state; anything else
       leaves the transaction open. *)
    (match p.pop with
    | Program.Commit | Program.Abort ->
      t.send ~req:p.preq (outcome_response (finish_txn t ~worker txn))
    | _ -> t.send ~req:p.preq (p.respond ()));
    `Done
  | Pool.Session_finished | Pool.Session_aborted _ ->
    (* Terminated out from under us (deadlock victim, certifier doom,
       deadline, injected fault): the attempt is over; tell the client
       why so it can retry. *)
    t.pending <- None;
    t.send ~req:p.preq (outcome_response (finish_txn t ~worker txn));
    `Done
  | Pool.Session_blocked { holders = _ } ->
    p.tries <- p.tries + 1;
    if p.tries >= t.max_op_retries then begin
      (* Starvation safety valve, as in the batch pool: restart rather
         than retry forever. The client sees an abort and retries. *)
      Pool.exec_stall_restart t.exec ~tid:txn.tid;
      t.pending <- None;
      t.send ~req:p.preq (outcome_response (finish_txn t ~worker txn));
      `Done
    end
    else begin
      let delay_ns = int_of_float (Runtime.Backoff.next_us t.bo *. 1e3) in
      p.parked_at <- now_ns ();
      t.emit ~tid:txn.tid (Trace.Event.Session_park { session = t.gid });
      `Park (p.parked_at + delay_ns)
    end

(* {2 Request dispatch} *)

let bad_state t ~req msg =
  t.send ~req (Protocol.Error { code = Protocol.err_bad_state; msg })

let handle t ~worker ~req (request : Protocol.request) =
  match (request, t.txn) with
  | Protocol.Open, _ ->
    (* Open created the session already; a second Open is a protocol
       misuse but harmless. *)
    bad_state t ~req "session already open";
    `Done
  | Protocol.Close, _ ->
    (match t.txn with
    | Some txn ->
      Pool.exec_abort t.exec ~tid:txn.tid;
      ignore (finish_txn t ~worker txn)
    | None -> ());
    Mutex.lock t.inbox_m;
    t.closed <- true;
    Queue.clear t.inbox;
    Mutex.unlock t.inbox_m;
    t.send ~req Protocol.Ok_resp;
    t.emit ~tid:0 (Trace.Event.Session_close { session = t.gid; txns = t.txns });
    t.on_close t;
    `Done
  | Protocol.Set_level _, Some _ ->
    bad_state t ~req "SET LEVEL inside a transaction";
    `Done
  | Protocol.Set_level name, None ->
    (match Level.of_string name with
    | None ->
      t.send ~req
        (Protocol.Error
           { code = Protocol.err_unknown; msg = "unknown level: " ^ name })
    | Some l ->
      (* Any known level is accepted as the session's *declared* level;
         a level from another engine family executes at its in-family
         strengthening ({!Isolation.Lattice.strengthen}, computed at
         BEGIN) while the certifier's mixed criterion and the journal
         still see what the client asked for. *)
      t.level <- l;
      t.send ~req Protocol.Ok_resp);
    `Done
  | Protocol.Begin _, Some _ ->
    bad_state t ~req "transaction already open";
    `Done
  | Protocol.Begin { read_only; attempt; name }, None ->
    if Atomic.get t.draining then begin
      t.send ~req
        (Protocol.Error { code = Protocol.err_draining; msg = "server draining" });
      `Done
    end
    else begin
      let tid = Pool.exec_fresh_tid t.exec in
      let attempt = max 1 attempt in
      if attempt > 1 then Pool.exec_note_retry t.exec ~wall_ns:0;
      (* Execute at the declared level's in-family strengthening (the
         identity when the family already matches); [declared] is what
         the mixed criterion judges and the journal attributes. *)
      let exec_level =
        Isolation.Lattice.strengthen t.level (Pool.exec_family t.exec)
      in
      Pool.exec_begin ~declared:t.level t.exec ~worker ~tid ~job:t.gid ~name
        ~attempt ~level:exec_level ~read_only;
      Runtime.Backoff.reset t.bo;
      t.txn <-
        Some
          {
            tid;
            name;
            level = t.level;
            attempt;
            start_ns = now_ns ();
            seq = 0;
            wait_ns = 0;
          };
      t.send ~req Protocol.Ok_resp;
      `Done
    end
  | Protocol.Stats, _ ->
    (* the front-end answers STATS on sid 0 before dispatch; one aimed
       at a live session is a misuse, not a crash *)
    bad_state t ~req "STATS is an admin request; send it with sid 0";
    `Done
  | ( ( Protocol.Read _ | Protocol.Write _ | Protocol.Insert _
      | Protocol.Delete _ | Protocol.Predicate _ | Protocol.Commit
      | Protocol.Abort ),
      None ) ->
    bad_state t ~req "no open transaction";
    `Done
  | op_req, Some txn ->
    let pend pop respond =
      let p = { preq = req; pop; respond; tries = 0; parked_at = 0 } in
      t.pending <- Some p;
      step_pending t ~worker txn p
    in
    let exec = t.exec and tid = txn.tid in
    (match op_req with
    | Protocol.Read k ->
      pend (Program.Read k) (fun () ->
          Protocol.Value (Program.read_result (Pool.exec_env exec ~tid) k))
    | Protocol.Write (k, v) ->
      pend (Program.Write (k, Program.const v)) (fun () -> Protocol.Ok_resp)
    | Protocol.Insert (k, v) ->
      pend (Program.Insert (k, Program.const v)) (fun () -> Protocol.Ok_resp)
    | Protocol.Delete k ->
      pend (Program.Delete k) (fun () -> Protocol.Ok_resp)
    | Protocol.Predicate wire_pred -> (
      match t.lookup_pred wire_pred with
      | Result.Error msg ->
        t.send ~req (Protocol.Error { code = Protocol.err_unknown; msg });
        `Done
      | Result.Ok pred ->
        pend (Program.Scan pred) (fun () ->
            Protocol.Rows
              (Program.scan_rows (Pool.exec_env exec ~tid)
                 (Storage.Predicate.name pred))))
    | Protocol.Commit -> pend Program.Commit (fun () -> Protocol.Committed)
    | Protocol.Abort -> pend Program.Abort (fun () -> Protocol.Aborted "user_abort")
    | Protocol.Open | Protocol.Close | Protocol.Set_level _ | Protocol.Begin _
    | Protocol.Stats ->
      assert false)

(* {2 The pump} *)

let pump t ~worker : Scheduler.outcome =
  if t.closed then `Idle
  else begin
    (* Resume a parked pending operation first: charge the park time as
       lock wait, then retry it. *)
    let resumed =
      match (t.pending, t.txn) with
      | Some p, Some txn when p.parked_at > 0 ->
        let slept = now_ns () - p.parked_at in
        p.parked_at <- 0;
        txn.wait_ns <- txn.wait_ns + slept;
        Pool.exec_note_wait t.exec ~slept_ns:slept;
        t.emit ~tid:txn.tid (Trace.Event.Session_resume { session = t.gid });
        Some (step_pending t ~worker txn p)
      | Some p, Some txn -> Some (step_pending t ~worker txn p)
      | _ -> None
    in
    match resumed with
    | Some (`Park due) -> `Park due
    | Some `Done | None -> (
      (* Serve queued requests until one blocks or the inbox drains.
         A bounded budget per pump keeps one busy session from
         monopolizing its worker — [`Yield] requeues it fairly. *)
      let budget = ref 32 in
      let rec drain () =
        if t.closed then `Idle
        else if !budget = 0 then `Yield
        else begin
          decr budget;
          match pop_inbox t with
          | None -> `Idle
          | Some (req, request) -> (
            match handle t ~worker ~req request with
            | `Done -> drain ()
            | `Park due -> `Park due)
        end
      in
      drain ())
  end
