(* The wire protocol: length-prefixed binary frames.

   A frame is a 4-byte big-endian payload length followed by the
   payload; the payload is an opcode byte, a 4-byte session id, a 4-byte
   request id and an opcode-specific body. The session id is what lets
   one TCP connection multiplex many sessions (sessions ≫ file
   descriptors); the request id is echoed on the response, so a client
   can pipeline requests across its sessions and pair the replies back
   up. Integers are big-endian: u16 for string lengths, u32 for ids and
   counts, i64 for values. Strings are u16 length + bytes.

   Decoding is total: every malformed input — oversized or undersized
   frames, unknown opcodes, truncated bodies, trailing garbage — comes
   back as [Error msg], never an exception, so the server can answer
   with a clean protocol error and close the connection instead of
   crashing. *)

(* Conservative ceiling on one frame's payload: large enough for a scan
   of every row a test database holds, small enough that a corrupt
   length prefix cannot make the server buffer gigabytes. *)
let max_frame = 1 lsl 20

(* Smallest well-formed payload: opcode + session id + request id. *)
let min_frame = 9

type pred =
  | Named of string
      (* resolved against the server's predicate registry ("all" is
         pre-registered) *)
  | Range of { name : string; lo : string; hi : string option }
      (* rows with lo <= key < hi; [None] is unbounded above *)

type request =
  | Open
  | Close
  | Set_level of string
  | Begin of { read_only : bool; attempt : int; name : string }
  | Read of string
  | Write of string * int
  | Insert of string * int
  | Delete of string
  | Predicate of pred
  | Commit
  | Abort
  | Stats
      (* admin: a live telemetry snapshot; session id 0 by convention
         (it addresses the server, not a session) *)

(* Error codes, mirrored in {!err_name}. *)
let err_malformed = 1
let err_bad_state = 2
let err_unknown = 3
let err_draining = 4
let err_server = 5

let err_name = function
  | 1 -> "malformed"
  | 2 -> "bad_state"
  | 3 -> "unknown"
  | 4 -> "draining"
  | 5 -> "server"
  | n -> Printf.sprintf "error_%d" n

type response =
  | Ok_resp
  | Value of int option          (* read result; None = absent row *)
  | Rows of (string * int) list  (* predicate scan result *)
  | Committed
  | Aborted of string            (* abort reason slug *)
  | Error of { code : int; msg : string }
  | Stats_resp of string         (* the telemetry report as one JSON object *)

(* {2 Encoding} *)

let add_u16 b n =
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_i64 b n =
  let v = Int64.of_int n in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let add_str b s =
  let n = min (String.length s) 0xffff in
  add_u16 b n;
  Buffer.add_substring b s 0 n

(* Long string (u32 length): the STATS JSON outgrows a u16 at a few
   hundred live levels × reasons, so it gets the wider prefix. Still
   bounded by [max_frame] (minus the 9-byte header and this prefix). *)
let add_lstr b s =
  let n = min (String.length s) (max_frame - min_frame - 4) in
  add_u32 b n;
  Buffer.add_substring b s 0 n

let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let request_body b = function
  | Open | Close | Commit | Abort | Stats -> ()
  | Set_level l -> add_str b l
  | Begin { read_only; attempt; name } ->
    add_bool b read_only;
    add_u32 b attempt;
    add_str b name
  | Read k | Delete k -> add_str b k
  | Write (k, v) | Insert (k, v) ->
    add_str b k;
    add_i64 b v
  | Predicate (Named n) ->
    Buffer.add_char b '\000';
    add_str b n
  | Predicate (Range { name; lo; hi }) ->
    Buffer.add_char b '\001';
    add_str b name;
    add_str b lo;
    (match hi with
    | None -> add_bool b false
    | Some h ->
      add_bool b true;
      add_str b h)

let request_opcode = function
  | Open -> 1
  | Close -> 2
  | Set_level _ -> 3
  | Begin _ -> 4
  | Read _ -> 5
  | Write _ -> 6
  | Insert _ -> 7
  | Delete _ -> 8
  | Predicate _ -> 9
  | Commit -> 10
  | Abort -> 11
  | Stats -> 12

let response_body b = function
  | Ok_resp | Committed -> ()
  | Value None -> add_bool b false
  | Value (Some v) ->
    add_bool b true;
    add_i64 b v
  | Rows rows ->
    add_u32 b (List.length rows);
    List.iter
      (fun (k, v) ->
        add_str b k;
        add_i64 b v)
      rows
  | Aborted reason -> add_str b reason
  | Error { code; msg } ->
    Buffer.add_char b (Char.chr (code land 0xff));
    add_str b msg
  | Stats_resp json -> add_lstr b json

let response_opcode = function
  | Ok_resp -> 0x81
  | Value _ -> 0x82
  | Rows _ -> 0x83
  | Committed -> 0x84
  | Aborted _ -> 0x85
  | Error _ -> 0x86
  | Stats_resp _ -> 0x87

let frame ~opcode ~sid ~req body =
  let b = Buffer.create 32 in
  add_u32 b 0; (* length placeholder *)
  Buffer.add_char b (Char.chr opcode);
  add_u32 b sid;
  add_u32 b req;
  body b;
  let bytes = Buffer.to_bytes b in
  Bytes.set_int32_be bytes 0 (Int32.of_int (Bytes.length bytes - 4));
  bytes

let encode_request ~sid ~req r =
  frame ~opcode:(request_opcode r) ~sid ~req (fun b -> request_body b r)

let encode_response ~sid ~req r =
  frame ~opcode:(response_opcode r) ~sid ~req (fun b -> response_body b r)

(* {2 Decoding} *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* A little cursor over one frame's payload. *)
type cur = { data : Bytes.t; mutable pos : int }

let need c n what =
  if c.pos + n > Bytes.length c.data then
    bad "truncated %s at offset %d" what c.pos

let u8 c what =
  need c 1 what;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c what =
  need c 2 what;
  let v = Bytes.get_uint16_be c.data c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_be c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let i64 c what =
  need c 8 what;
  let v = Int64.to_int (Bytes.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let str c what =
  let n = u16 c what in
  need c n what;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let lstr c what =
  let n = u32 c what in
  if n > max_frame then bad "%s length %d out of bounds" what n;
  need c n what;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let bool c what =
  match u8 c what with
  | 0 -> false
  | 1 -> true
  | n -> bad "bad boolean %d in %s" n what

let finish c v =
  if c.pos <> Bytes.length c.data then
    bad "%d trailing bytes after payload" (Bytes.length c.data - c.pos);
  v

(* Shared header: opcode, session id, request id. *)
let header payload =
  if Bytes.length payload < min_frame then
    bad "payload %d bytes, minimum %d" (Bytes.length payload) min_frame;
  let c = { data = payload; pos = 0 } in
  let opcode = u8 c "opcode" in
  let sid = u32 c "session id" in
  let req = u32 c "request id" in
  (c, opcode, sid, req)

let decode_request payload =
  try
    let c, opcode, sid, req = header payload in
    let r =
      match opcode with
      | 1 -> Open
      | 2 -> Close
      | 3 -> Set_level (str c "level")
      | 4 ->
        let read_only = bool c "read_only" in
        let attempt = u32 c "attempt" in
        let name = str c "name" in
        Begin { read_only; attempt; name }
      | 5 -> Read (str c "key")
      | 6 ->
        let k = str c "key" in
        Write (k, i64 c "value")
      | 7 ->
        let k = str c "key" in
        Insert (k, i64 c "value")
      | 8 -> Delete (str c "key")
      | 9 -> (
        match u8 c "predicate form" with
        | 0 -> Predicate (Named (str c "predicate name"))
        | 1 ->
          let name = str c "predicate name" in
          let lo = str c "range lo" in
          let hi = if bool c "range bound" then Some (str c "range hi") else None in
          Predicate (Range { name; lo; hi })
        | f -> bad "unknown predicate form %d" f)
      | 10 -> Commit
      | 11 -> Abort
      | 12 -> Stats
      | op -> bad "unknown request opcode %d" op
    in
    Result.Ok (sid, req, finish c r)
  with Bad msg -> Result.Error msg

let decode_response payload =
  try
    let c, opcode, sid, req = header payload in
    let r =
      match opcode with
      | 0x81 -> Ok_resp
      | 0x82 -> if bool c "presence" then Value (Some (i64 c "value")) else Value None
      | 0x83 ->
        let n = u32 c "row count" in
        if n > max_frame then bad "row count %d out of bounds" n;
        let rows = ref [] in
        for _ = 1 to n do
          let k = str c "row key" in
          let v = i64 c "row value" in
          rows := (k, v) :: !rows
        done;
        Rows (List.rev !rows)
      | 0x84 -> Committed
      | 0x85 -> Aborted (str c "abort reason")
      | 0x86 ->
        let code = u8 c "error code" in
        Error { code; msg = str c "error message" }
      | 0x87 -> Stats_resp (lstr c "stats body")
      | op -> bad "unknown response opcode %d" op
    in
    Result.Ok (sid, req, finish c r)
  with Bad msg -> Result.Error msg

(* {2 The incremental frame reader} *)

module Reader = struct
  type t = { mutable buf : Bytes.t; mutable len : int; mutable off : int }

  let create () = { buf = Bytes.create 4096; len = 0; off = 0 }

  let compact t =
    if t.off > 0 then begin
      Bytes.blit t.buf t.off t.buf 0 (t.len - t.off);
      t.len <- t.len - t.off;
      t.off <- 0
    end

  let feed t src ~pos ~len =
    compact t;
    if t.len + len > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + len > !cap do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    Bytes.blit src pos t.buf t.len len;
    t.len <- t.len + len

  let next t =
    let avail = t.len - t.off in
    if avail < 4 then `Awaiting
    else begin
      let flen = Int32.to_int (Bytes.get_int32_be t.buf t.off) in
      if flen < min_frame || flen > max_frame then
        `Corrupt (Printf.sprintf "frame length %d out of bounds" flen)
      else if avail < 4 + flen then `Awaiting
      else begin
        let payload = Bytes.sub t.buf (t.off + 4) flen in
        t.off <- t.off + 4 + flen;
        `Frame payload
      end
    end
end

(* {2 Printing} *)

let pp_pred ppf = function
  | Named n -> Fmt.pf ppf "<%s>" n
  | Range { name; lo; hi } ->
    Fmt.pf ppf "<%s: [%s, %a)>" name lo
      (fun ppf -> function None -> Fmt.string ppf "∞" | Some h -> Fmt.string ppf h)
      hi

let pp_request ppf = function
  | Open -> Fmt.string ppf "OPEN"
  | Close -> Fmt.string ppf "CLOSE"
  | Set_level l -> Fmt.pf ppf "SET LEVEL %s" l
  | Begin { read_only; attempt; name } ->
    Fmt.pf ppf "BEGIN %s#%d%s" name attempt (if read_only then " RO" else "")
  | Read k -> Fmt.pf ppf "READ %s" k
  | Write (k, v) -> Fmt.pf ppf "WRITE %s=%d" k v
  | Insert (k, v) -> Fmt.pf ppf "INSERT %s=%d" k v
  | Delete k -> Fmt.pf ppf "DELETE %s" k
  | Predicate p -> Fmt.pf ppf "PREDICATE %a" pp_pred p
  | Commit -> Fmt.string ppf "COMMIT"
  | Abort -> Fmt.string ppf "ABORT"
  | Stats -> Fmt.string ppf "STATS"

let pp_response ppf = function
  | Ok_resp -> Fmt.string ppf "OK"
  | Value None -> Fmt.string ppf "VALUE -"
  | Value (Some v) -> Fmt.pf ppf "VALUE %d" v
  | Rows rows -> Fmt.pf ppf "ROWS %d" (List.length rows)
  | Committed -> Fmt.string ppf "COMMITTED"
  | Aborted r -> Fmt.pf ppf "ABORTED %s" r
  | Error { code; msg } -> Fmt.pf ppf "ERROR %s: %s" (err_name code) msg
  | Stats_resp json -> Fmt.pf ppf "STATS %d bytes" (String.length json)
