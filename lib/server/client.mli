(** A wire client: one socket carrying any number of sessions.

    {!send}/{!recv} are the pipelined primitives (the load generator
    keeps many sessions in flight per socket); {!request} is the
    synchronous convenience for tests, pairing replies by (sid, req) and
    stashing out-of-order arrivals. Not thread-safe: one driver thread
    per connection. *)

type t

val connect : host:string -> port:int -> t
val close : t -> unit

val send : t -> sid:int -> Protocol.request -> int
(** Write one frame; returns the request id echoed by the reply. *)

val recv :
  ?timeout_s:float ->
  t ->
  ((int * int * Protocol.response) option, string) result
(** Next decoded [(sid, req, response)] in arrival order. [Ok None] on
    timeout or EOF; [Error] on wire corruption. Omitting [timeout_s]
    blocks. *)

val request :
  ?timeout_s:float ->
  t ->
  sid:int ->
  Protocol.request ->
  (Protocol.response, string) result
(** [send] then wait for that specific reply (default timeout 10s). *)
