(** A server-side session: the per-client state object carrying the
    declared isolation level and the open-transaction handle.

    Each in-transaction request becomes one engine operation via
    {!Runtime.Pool.exec_step}. A blocked step does not sleep its worker:
    the session keeps the operation pending, draws a backoff delay and
    parks; the scheduler resumes it when the timer expires. All mutable
    state is owned by the single worker pumping the session at any
    moment — only the inbox is shared with the connection's reader
    thread. *)

type t

val create :
  sid:int ->
  gid:int ->
  conn:int ->
  exec:Runtime.Pool.exec ->
  max_op_retries:int ->
  draining:bool Atomic.t ->
  lookup_pred:(Protocol.pred -> (Storage.Predicate.t, string) result) ->
  send:(req:int -> Protocol.response -> unit) ->
  emit:(tid:int -> Trace.Event.kind -> unit) ->
  on_close:(t -> unit) ->
  level:Isolation.Level.t ->
  seed:int ->
  t
(** [sid] is the wire id (connection-scoped); [gid] the global session
    index, used as the journal job id. [send] must be safe to call from
    any worker (the writer queue locks internally); [emit] routes trace
    events. [on_close] deregisters the session after Session_close. *)

val sid : t -> int
val gid : t -> int
val conn : t -> int
val txns : t -> int

val task : t -> Scheduler.task
val set_task : t -> Scheduler.task -> unit
(** The scheduler task is created from {!pump} after the session exists
    (they reference each other); backpatch it here. *)

val offer : t -> req:int -> Protocol.request -> bool
(** Reader thread: queue a request. [false] if the session closed
    (caller replies with an error itself). Follow with
    {!Scheduler.wake}. *)

val pump : t -> worker:int -> Scheduler.outcome
(** Serve the pending operation and then the inbox; the scheduler's pump
    function. *)

val force_close : t -> worker:int -> unit
(** Abort any open transaction and close without replies — the client
    disconnected or the server is force-draining. Safe to call from a
    pump context only (same ownership rule as {!pump}); the frontend
    wraps it in a synthetic Close when calling cross-thread. *)
