(* The session scheduler: N worker domains multiplexing many more
   tasks (sessions) than workers.

   A task is a pump closure plus a scheduling state. The reader threads
   wake a task when input arrives; a worker picks it off the ready queue
   and pumps it until it reports one of three outcomes: [`Idle] (inbox
   drained — wait for more input), [`Park due_ns] (its transaction is
   blocked or backing off — resume when the timer expires, freeing the
   worker for runnable sessions), or [`Yield] (still runnable — go to
   the back of the queue so siblings get a turn).

   The lost-wakeup race — input arriving between the pump's last inbox
   check and the worker marking the task idle — is closed by the state
   machine under the scheduler mutex: a wake hitting a [Running] task
   marks it [Running_dirty], and the worker's post-pump transition
   re-queues a dirty task instead of idling it.

   OCaml's stdlib has no [Condition.timedwait], so parked timers are
   driven by a dedicated waker thread that sleeps until the earliest
   due time (capped at 200µs, so a newly parked earlier timer is picked
   up promptly) and moves due tasks to the ready queue. *)

type outcome = [ `Idle | `Park of int | `Yield ]

type state =
  | Idle          (* waiting for input; not owned by the scheduler *)
  | Queued        (* on the ready queue *)
  | Running       (* being pumped by a worker *)
  | Running_dirty (* being pumped; new input arrived meanwhile *)
  | Parked        (* on the timer heap *)

type task = {
  pump : worker:int -> outcome;
  mutable state : state;
  mutable queued_at_ns : int; (* stamp of the last enqueue, for wake latency *)
}

let task pump = { pump; state = Idle; queued_at_ns = 0 }

(* A binary min-heap of (due_ns, task). *)
module Heap = struct
  type t = {
    mutable arr : (int * task) array;
    mutable n : int;
  }

  let dummy =
    (max_int, { pump = (fun ~worker:_ -> `Idle); state = Idle; queued_at_ns = 0 })
  let create () = { arr = Array.make 64 dummy; n = 0 }
  let size h = h.n

  let swap h i j =
    let t = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- t

  let push h due task =
    if h.n = Array.length h.arr then begin
      let arr = Array.make (2 * h.n) dummy in
      Array.blit h.arr 0 arr 0 h.n;
      h.arr <- arr
    end;
    h.arr.(h.n) <- (due, task);
    let i = ref h.n in
    h.n <- h.n + 1;
    while !i > 0 && fst h.arr.((!i - 1) / 2) > fst h.arr.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let min_due h = if h.n = 0 then None else Some (fst h.arr.(0))

  let pop h =
    let top = h.arr.(0) in
    h.n <- h.n - 1;
    h.arr.(0) <- h.arr.(h.n);
    h.arr.(h.n) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && fst h.arr.(l) < fst h.arr.(!m) then m := l;
      if r < h.n && fst h.arr.(r) < fst h.arr.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        swap h !i !m;
        i := !m
      end
    done;
    top
end

type t = {
  m : Mutex.t;
  cv : Condition.t;        (* workers wait here for ready tasks *)
  ready : task Queue.t;
  timers : Heap.t;
  mutable active : int;    (* tasks not in [Idle] *)
  (* Wake-to-run accounting: how long tasks sit on the ready queue
     between enqueue and a worker popping them — the scheduler's own
     saturation number (it grows when sessions outnumber worker
     bandwidth). All under [m], like the queues they describe. *)
  mutable wakes : int;
  mutable wake_ns_total : int;
  mutable wake_ns_max : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  mutable waker : Thread.t option;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let enqueue_locked t task =
  task.state <- Queued;
  task.queued_at_ns <- now_ns ();
  Queue.push task t.ready;
  Condition.signal t.cv

(* Input arrived for [task]: make sure it gets pumped. *)
let wake t task =
  Mutex.lock t.m;
  (match task.state with
  | Idle ->
    t.active <- t.active + 1;
    enqueue_locked t task
  | Running -> task.state <- Running_dirty
  | Queued | Running_dirty | Parked -> ());
  Mutex.unlock t.m

(* How soon a park is worth the timer heap: shorter delays just go to
   the back of the ready queue, which costs one round-robin lap instead
   of a (200µs-granular) timer sleep. *)
let min_park_ns = 150_000

let worker_loop t ~attach widx =
  attach widx;
  Mutex.lock t.m;
  let rec loop () =
    if Queue.is_empty t.ready && not t.stopped then begin
      Condition.wait t.cv t.m;
      loop ()
    end
    else if Queue.is_empty t.ready then Mutex.unlock t.m (* stopped + drained *)
    else begin
      let task = Queue.pop t.ready in
      task.state <- Running;
      let waited = now_ns () - task.queued_at_ns in
      t.wakes <- t.wakes + 1;
      if waited > 0 then begin
        t.wake_ns_total <- t.wake_ns_total + waited;
        if waited > t.wake_ns_max then t.wake_ns_max <- waited
      end;
      Mutex.unlock t.m;
      let outcome =
        try task.pump ~worker:widx
        with e ->
          (* A pump failure must not kill its worker: report it, wedge
             only the one session. *)
          Printf.eprintf "scheduler: pump raised %s\n%!" (Printexc.to_string e);
          `Idle
      in
      Mutex.lock t.m;
      (match outcome with
      | `Idle when task.state = Running ->
        task.state <- Idle;
        t.active <- t.active - 1
      | `Idle | `Yield ->
        (* dirty idle: input raced in while pumping — run it again *)
        enqueue_locked t task
      | `Park due ->
        (* a park with pending input still parks: the blocked operation
           must complete before the new input can be served anyway *)
        if due - now_ns () < min_park_ns then enqueue_locked t task
        else begin
          task.state <- Parked;
          Heap.push t.timers due task
        end);
      loop ()
    end
  in
  loop ()

let waker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    if t.stopped then Mutex.unlock t.m
    else begin
      let now = now_ns () in
      let fired = ref false in
      let rec fire () =
        match Heap.min_due t.timers with
        | Some due when due <= now ->
          let _, task = Heap.pop t.timers in
          (* Parked is the only state a task on the heap can be in. *)
          enqueue_locked t task;
          fired := true;
          fire ()
        | _ -> ()
      in
      fire ();
      let sleep_ns =
        match Heap.min_due t.timers with
        | Some due -> min (due - now) 200_000
        | None -> 200_000
      in
      Mutex.unlock t.m;
      ignore !fired;
      Unix.sleepf (float (max 20_000 sleep_ns) /. 1e9);
      loop ()
    end
  in
  loop ()

let create ~workers ~attach =
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      ready = Queue.create ();
      timers = Heap.create ();
      active = 0;
      wakes = 0;
      wake_ns_total = 0;
      wake_ns_max = 0;
      stopped = false;
      workers = [];
      waker = None;
    }
  in
  t.workers <-
    List.init (max 1 workers) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~attach i));
  t.waker <- Some (Thread.create waker_loop t);
  t

let active t =
  Mutex.lock t.m;
  let n = t.active in
  Mutex.unlock t.m;
  n

type gauges = {
  runnable : int;
  parked : int;
  active_tasks : int;
  wakes : int;
  wake_ns_total : int;
  wake_ns_max : int;
}

(* One mutex hold, so the reading is internally consistent — the same
   exclusion every enqueue/pop takes, making a scrape as intrusive as
   one more wake. *)
let gauges t =
  Mutex.lock t.m;
  let g =
    {
      runnable = Queue.length t.ready;
      parked = Heap.size t.timers;
      active_tasks = t.active;
      wakes = t.wakes;
      wake_ns_total = t.wake_ns_total;
      wake_ns_max = t.wake_ns_max;
    }
  in
  Mutex.unlock t.m;
  g

(* Wait (politely) until every task has gone idle; [false] on timeout.
   Parked tasks count as active — a drain waits out their backoff. *)
let quiesce t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if active t = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ()

(* Stop the workers once the ready queue drains. Parked tasks are
   abandoned (the caller has already quiesced or force-closed them). *)
let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- [];
  Option.iter Thread.join t.waker;
  t.waker <- None
