(** The load generator: N client sessions multiplexed over a few
    connections, each a state machine with at most one outstanding
    request. Programs come from {!Workload.Generators.stress_program}
    (same seeding as the in-process stress harness); expressions are
    evaluated client-side from VALUE/ROWS replies, so read-modify-write
    data flows through the protocol. Aborts retry with fresh BEGINs up
    to [max_attempts]; DRAINING ends sessions gracefully. *)

type config = {
  host : string;
  port : int;
  sessions : int;
  conns : int;  (** sockets; sessions are spread round-robin *)
  txns_per_session : int;
  mix : Workload.Generators.mix;
  levels : (Isolation.Level.t * float) list;
      (** weighted per-session level choice (SET LEVEL once at open) *)
  accounts : int;
  hot : int;
  ops : int;
  think_us : float;
  seed : int;
  max_attempts : int;
  progress_s : float;
      (** > 0: print a {!Telemetry.Window.pp_rates} interval line to
          stderr this often while driving *)
}

val config :
  ?host:string ->
  ?port:int ->
  ?sessions:int ->
  ?conns:int ->
  ?txns_per_session:int ->
  ?mix:Workload.Generators.mix ->
  ?levels:(Isolation.Level.t * float) list ->
  ?accounts:int ->
  ?hot:int ->
  ?ops:int ->
  ?think_us:float ->
  ?seed:int ->
  ?max_attempts:int ->
  ?progress_s:float ->
  unit ->
  config

type stats = {
  sessions : int;
  committed : int;
  aborted : int;  (** abort replies received (each triggers a retry) *)
  giveups : int;  (** transactions dropped after [max_attempts] *)
  draining_rejects : int;
  protocol_errors : int;
  requests : int;
  wall_s : float;
  throughput : float;  (** committed transactions per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (** commit latency: BEGIN sent -> COMMITTED received *)
}

val pp_stats : stats Fmt.t

val run : config -> stats
(** Blocks until every session has finished (or abandoned after 30s of
    server silence). One driver thread per connection. *)
