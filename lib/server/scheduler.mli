(** The session scheduler: a fixed pool of worker domains multiplexing
    many more tasks (sessions) than workers.

    A task is a pump closure plus scheduler-owned state. {!wake} makes a
    task runnable when input arrives; a worker pumps it until it reports
    [`Idle] (inbox drained), [`Park due_ns] (blocked or backing off —
    resume when the timer expires, freeing the worker) or [`Yield]
    (still runnable; requeue behind siblings). A task is pumped by at
    most one worker at a time, which is what lets sessions mutate their
    own state without locks; the wake-while-running race is closed by a
    dirty flag under the scheduler mutex. Parks shorter than ~150µs skip
    the timer heap and just requeue — one round-robin lap is cheaper
    than a timer sleep at the waker's 200µs granularity. *)

type outcome = [ `Idle | `Park of int | `Yield ]

type task

val task : (worker:int -> outcome) -> task
(** Wrap a pump. The [worker] argument is the lane of the domain pumping
    this time (trace-ring binding, heartbeat index). *)

type t

val create : workers:int -> attach:(int -> unit) -> t
(** Spawn [workers] domains. Each calls [attach i] once at startup —
    bind trace rings there ({!Runtime.Pool.exec_attach_worker}). *)

val wake : t -> task -> unit
(** Input arrived: schedule the task if it is idle, or mark it dirty if
    it is currently being pumped. Idempotent. *)

val active : t -> int
(** Tasks not currently idle (queued, running or parked). *)

type gauges = {
  runnable : int;  (** tasks on the ready queue right now *)
  parked : int;  (** tasks sleeping in the timer heap *)
  active_tasks : int;  (** tasks not idle (runnable + parked + running) *)
  wakes : int;  (** cumulative ready-queue pops *)
  wake_ns_total : int;
      (** total enqueue-to-pop latency; [/ wakes] is the mean wake-to-run
          delay, the scheduler's saturation number *)
  wake_ns_max : int;
}

val gauges : t -> gauges
(** One consistent reading under the scheduler mutex; costs what one
    wake costs, so it is safe to scrape at dashboard rates. *)

val quiesce : t -> timeout_s:float -> bool
(** Wait until every task is idle; [false] on timeout. Parked tasks
    count as active — a drain waits out their backoff. *)

val stop : t -> unit
(** Stop and join the workers once the ready queue drains; parked tasks
    are abandoned (quiesce or force-close sessions first). *)
