(* A wire client: one socket carrying any number of sessions. Sending
   and receiving are explicit so callers can pipeline ({!send} many,
   {!recv} in completion order); {!request} is the synchronous
   convenience used by tests, stashing out-of-order replies so
   interleaved sessions on one connection still pair up correctly. *)

type t = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  buf : Bytes.t;
  mutable next_req : int;
  stash : (int * int, Protocol.response) Hashtbl.t;  (* (sid, req) -> reply *)
}

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  {
    fd;
    reader = Protocol.Reader.create ();
    buf = Bytes.create 65536;
    next_req = 1;
    stash = Hashtbl.create 64;
  }

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let send t ~sid request =
  let req = t.next_req in
  t.next_req <- req + 1;
  let frame = Protocol.encode_request ~sid ~req request in
  let rec write_all pos len =
    if len > 0 then begin
      match Unix.write t.fd frame pos len with
      | n -> write_all (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all pos len
    end
  in
  write_all 0 (Bytes.length frame);
  req

(* One decoded response, pulling from the socket as needed. [timeout_s]
   bounds the whole wait; [None] on timeout or EOF, [Error] on protocol
   corruption. *)
let recv ?timeout_s t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let rec next () =
    match Protocol.Reader.next t.reader with
    | `Frame payload -> (
      match Protocol.decode_response payload with
      | Ok (sid, req, resp) -> Ok (Some (sid, req, resp))
      | Error msg -> Error msg)
    | `Corrupt msg -> Error msg
    | `Awaiting -> (
      let remaining =
        match deadline with
        | None -> -1.0 (* block *)
        | Some d ->
          let r = d -. Unix.gettimeofday () in
          if r <= 0. then 0. else r
      in
      if remaining = 0. then Ok None
      else
        match Unix.select [ t.fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
        | [], _, _ -> Ok None
        | _, _, _ -> (
          match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
          | 0 -> Ok None
          | exception Unix.Unix_error (_, _, _) -> Ok None
          | n ->
            Protocol.Reader.feed t.reader t.buf ~pos:0 ~len:n;
            next ()))
  in
  next ()

(* Send and wait for that specific reply, stashing replies to other
   (sid, req) pairs for their own waiters. *)
let request ?(timeout_s = 10.0) t ~sid req_body =
  let req = send t ~sid req_body in
  match Hashtbl.find_opt t.stash (sid, req) with
  | Some resp ->
    Hashtbl.remove t.stash (sid, req);
    Ok resp
  | None ->
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec wait () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then Error "timeout"
      else
        match recv ~timeout_s:remaining t with
        | Error msg -> Error msg
        | Ok None -> Error "timeout"
        | Ok (Some (rsid, rreq, resp)) ->
          if rsid = sid && rreq = req then Ok resp
          else begin
            Hashtbl.replace t.stash (rsid, rreq) resp;
            wait ()
          end
    in
    wait ()
