(** The wire-protocol front-end: a socket server multiplexing thousands
    of client sessions — each with its own declared isolation level —
    over the fixed worker-domain pool, plus the matching client and load
    generator. See DESIGN.md, "Server front-end & session scheduler". *)

module Protocol = Protocol
module Scheduler = Scheduler
module Session = Session
module Frontend = Frontend
module Client = Client
module Loadgen = Loadgen
