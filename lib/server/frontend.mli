(** The socket front-end: accept loop, per-connection reader/writer
    threads, frame dispatch into sessions, graceful drain.

    {!serve} blocks until [stop] flips (or [duration_s] passes), drains —
    new OPENs and BEGINs bounce with [err_draining], in-flight
    transactions get [drain_grace_s] to finish, then connections are
    severed and every remaining session closes through the normal pump
    path — and returns the finalized {!Runtime.Pool.result} (history,
    journal, metrics, oracle and certifier verdicts, trace) plus wire
    statistics. *)

type config = {
  host : string;
  port : int;  (** 0 picks a free port (see [on_ready]) *)
  pool : Runtime.Pool.config;
      (** engine / concurrency / trace / fault / certify settings;
          [pool.workers] sizes the scheduler's domain pool *)
  family : [ `Locking | `Mv | `Timestamp ];
  default_level : Isolation.Level.t;
  drain_grace_s : float;
  duration_s : float option;  (** [None] serves until [stop] flips *)
  stop : bool Atomic.t;
  on_ready : int -> unit;  (** called with the bound port once listening *)
  telemetry_port : int option;
      (** also serve a Prometheus text exposition over HTTP here
          (0 picks a free port, see [telemetry_ready]); the same live
          report answers the wire protocol's STATS admin op either way *)
  telemetry_ready : int -> unit;
}

val config :
  ?host:string ->
  ?port:int ->
  ?default_level:Isolation.Level.t ->
  ?drain_grace_s:float ->
  ?duration_s:float ->
  ?stop:bool Atomic.t ->
  ?on_ready:(int -> unit) ->
  ?telemetry_port:int ->
  ?telemetry_ready:(int -> unit) ->
  pool:Runtime.Pool.config ->
  family:[ `Locking | `Mv | `Timestamp ] ->
  unit ->
  config

type stats = {
  conns : int;
  sessions : int;
  frames : int;
  protocol_errors : int;
  disconnects : int;  (** injected connection severs (fault plan) *)
}

val pp_stats : stats Fmt.t

val serve : config -> Runtime.Pool.result * stats
