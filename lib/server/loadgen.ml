(* The load generator: N client sessions multiplexed over a handful of
   connections, each driven as a little state machine with at most one
   outstanding request — so a blocked session costs the generator
   nothing while its siblings on the same socket keep pipelining.

   Programs come from {!Workload.Generators.stress_program}, seeded by
   (seed, global txn index), so a loadgen run requests the same work the
   in-process stress harness would execute. Expressions are evaluated
   client-side: the generator maintains each transaction's
   {!Core.Program.env} from the VALUE/ROWS replies and sends computed
   constants over the wire — the read-modify-write data flow travels
   through the protocol, not around it.

   Aborted transactions retry with a fresh BEGIN (attempt + 1) after a
   client-side exponential backoff, up to [max_attempts]; DRAINING
   errors end the session gracefully. *)

module Program = Core.Program
module Level = Isolation.Level
module Generators = Workload.Generators

type config = {
  host : string;
  port : int;
  sessions : int;
  conns : int;  (** sockets; sessions are spread round-robin *)
  txns_per_session : int;
  mix : Generators.mix;
  levels : (Level.t * float) list;
      (** weighted per-session level choice (SET LEVEL once at open) *)
  accounts : int;
  hot : int;
  ops : int;
  think_us : float;  (** mean think time between a session's requests *)
  seed : int;
  max_attempts : int;
  progress_s : float;  (** > 0: print an interval line this often *)
}

let config ?(host = "127.0.0.1") ?(port = 7654) ?(sessions = 64) ?conns
    ?(txns_per_session = 10) ?(mix = Generators.Hotspot)
    ?(levels = [ (Level.Read_committed, 1.0) ]) ?(accounts = 16) ?(hot = 4)
    ?(ops = 6) ?(think_us = 0.) ?(seed = 42) ?(max_attempts = 10)
    ?(progress_s = 0.) () =
  let conns =
    match conns with Some c -> max 1 c | None -> max 1 (min sessions 32)
  in
  { host; port; sessions; conns; txns_per_session; mix; levels; accounts; hot;
    ops; think_us; seed; max_attempts; progress_s }

type stats = {
  sessions : int;
  committed : int;
  aborted : int;  (** abort replies received (each triggers a retry) *)
  giveups : int;  (** transactions dropped after [max_attempts] *)
  draining_rejects : int;
  protocol_errors : int;
  requests : int;
  wall_s : float;
  throughput : float;  (** committed transactions per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (** commit latency: BEGIN sent -> COMMITTED received *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "sessions=%d committed=%d aborted=%d giveups=%d draining=%d proto_errs=%d \
     reqs=%d wall=%.2fs tput=%.0f/s p50=%.2fms p95=%.2fms p99=%.2fms"
    s.sessions s.committed s.aborted s.giveups s.draining_rejects
    s.protocol_errors s.requests s.wall_s s.throughput s.p50_ms s.p95_ms
    s.p99_ms

(* {2 Per-session client state machine}

   [await] tags the outstanding request so the reply is interpreted in
   context; a session has at most one in flight. *)

type await =
  | A_open
  | A_level
  | A_begin
  | A_op of Program.op
  | A_close

type sess = {
  sid : int;
  gid : int;
  level : Level.t;
  rng : Random.State.t;
  mutable opened : bool;
  mutable leveled : bool;
  mutable in_txn : bool;
  mutable txn_i : int;
  mutable attempt : int;
  mutable ops_left : Program.op list;
  mutable env : Program.env;
  mutable begin_s : float;  (* BEGIN send stamp, for commit latency *)
  mutable due : float;      (* no sends before this wall time *)
  mutable outstanding : (int * await) option;
  mutable done_ : bool;
}

type counters = {
  mutable c_committed : int;
  mutable c_aborted : int;
  mutable c_giveups : int;
  mutable c_draining : int;
  mutable c_proto : int;
  mutable c_requests : int;
  mutable c_latencies_ms : float list;
  mutable c_done : int;
}

(* The weighted draw is the workload library's ({!Workload.Mix.pick}) —
   one parser, one draw, shared with stress/chaos. *)
let pick_level cfg rng =
  match cfg.levels with
  | [] -> Level.Read_committed
  | mix -> Workload.Mix.pick mix rng

let think cfg s now =
  if cfg.think_us <= 0. then now
  else
    let u = Random.State.float s.rng 1.0 in
    now +. (cfg.think_us *. -.log (1. -. u) /. 1e6)

let retry_delay s ~attempt =
  let window = min (200e-6 *. (2. ** float (attempt - 1))) 5e-3 in
  Random.State.float s.rng window

let wire_op env op =
  match op with
  | Program.Read k -> Some (Protocol.Read k)
  | Program.Write (k, e) -> Some (Protocol.Write (k, e env))
  | Program.Insert (k, e) -> Some (Protocol.Insert (k, e env))
  | Program.Delete k -> Some (Protocol.Delete k)
  | Program.Scan pred -> (
    let name = Storage.Predicate.name pred in
    match Storage.Predicate.range_bounds pred with
    | Some (lo, hi) -> Some (Protocol.Predicate (Protocol.Range { name; lo; hi }))
    | None -> Some (Protocol.Predicate (Protocol.Named name)))
  | Program.Commit -> Some Protocol.Commit
  | Program.Abort -> Some Protocol.Abort
  | Program.Open_cursor _ | Program.Fetch _ | Program.Cursor_write _
  | Program.Close_cursor _ ->
    None (* not on the wire; the stress mixes never emit them *)

let fresh_program cfg s =
  let index = (s.gid * cfg.txns_per_session) + s.txn_i in
  Generators.stress_program cfg.mix ~seed:cfg.seed ~accounts:cfg.accounts
    ~hot:cfg.hot ~ops:cfg.ops ~index

let finish ct s =
  if not s.done_ then begin
    s.done_ <- true;
    s.outstanding <- None;
    ct.c_done <- ct.c_done + 1
  end

(* Send the session's next request, if it is idle and its clock allows. *)
let rec advance cfg cl ct now s =
  if s.done_ || s.outstanding <> None || s.due > now then ()
  else begin
    let send await req =
      ct.c_requests <- ct.c_requests + 1;
      s.outstanding <- Some (Client.send cl ~sid:s.sid req, await)
    in
    if not s.opened then send A_open Protocol.Open
    else if not s.leveled then
      send A_level (Protocol.Set_level (Level.name s.level))
    else if s.in_txn then begin
      match s.ops_left with
      | [] ->
        (* programs end in Commit/Abort; defensively close a dangling txn *)
        send (A_op Program.Commit) Protocol.Commit
      | op :: rest -> (
        match wire_op s.env op with
        | Some w -> send (A_op op) w
        | None ->
          s.ops_left <- rest;
          advance cfg cl ct now s
        | exception Invalid_argument _ ->
          (* an expression over a row the server doesn't have (e.g.
             mismatched --accounts): fail the session loudly but cleanly *)
          ct.c_proto <- ct.c_proto + 1;
          finish ct s)
    end
    else if s.txn_i >= cfg.txns_per_session then send A_close Protocol.Close
    else begin
      let prog = fresh_program cfg s in
      s.ops_left <- prog.Program.ops;
      s.env <- Program.empty_env;
      s.begin_s <- now;
      send A_begin
        (Protocol.Begin
           { read_only = false; attempt = s.attempt; name = prog.Program.name })
    end
  end

let txn_over ct s now ~(committed : bool) =
  s.in_txn <- false;
  s.ops_left <- [];
  if committed then begin
    ct.c_committed <- ct.c_committed + 1;
    ct.c_latencies_ms <- ((now -. s.begin_s) *. 1e3) :: ct.c_latencies_ms;
    s.txn_i <- s.txn_i + 1;
    s.attempt <- 1
  end
  else begin
    ct.c_aborted <- ct.c_aborted + 1;
    s.attempt <- s.attempt + 1
  end

let on_reply cfg ct now s await (resp : Protocol.response) =
  match (await, resp) with
  | A_open, Protocol.Ok_resp -> s.opened <- true
  | A_open, _ -> finish ct s
  | A_level, Protocol.Ok_resp -> s.leveled <- true
  | A_level, _ ->
    (* level refused (wrong family): carry on at the server default *)
    ct.c_proto <- ct.c_proto + 1;
    s.leveled <- true
  | A_begin, Protocol.Ok_resp ->
    s.in_txn <- true;
    s.due <- think cfg s now
  | A_begin, Protocol.Error { code; _ } when code = Protocol.err_draining ->
    ct.c_draining <- ct.c_draining + 1;
    (* stop generating; close the session politely *)
    s.txn_i <- cfg.txns_per_session
  | A_begin, _ ->
    ct.c_proto <- ct.c_proto + 1;
    finish ct s
  | A_op op, resp -> (
    match resp with
    | Protocol.Committed -> txn_over ct s now ~committed:true; s.due <- think cfg s now
    | Protocol.Aborted _ ->
      txn_over ct s now ~committed:false;
      if s.attempt > cfg.max_attempts then begin
        ct.c_giveups <- ct.c_giveups + 1;
        s.txn_i <- s.txn_i + 1;
        s.attempt <- 1;
        s.due <- think cfg s now
      end
      else s.due <- now +. retry_delay s ~attempt:s.attempt
    | Protocol.Value v ->
      (match op with
      | Program.Read k -> s.env <- Program.observe_read s.env k v
      | _ -> ());
      s.ops_left <- (match s.ops_left with _ :: r -> r | [] -> []);
      s.due <- think cfg s now
    | Protocol.Rows rows ->
      (match op with
      | Program.Scan pred ->
        s.env <- Program.observe_scan s.env (Storage.Predicate.name pred) rows
      | _ -> ());
      s.ops_left <- (match s.ops_left with _ :: r -> r | [] -> []);
      s.due <- think cfg s now
    | Protocol.Ok_resp ->
      s.ops_left <- (match s.ops_left with _ :: r -> r | [] -> []);
      s.due <- think cfg s now
    | Protocol.Error _ | Protocol.Stats_resp _ ->
      ct.c_proto <- ct.c_proto + 1;
      finish ct s)
  | A_close, _ -> finish ct s

(* {2 Driving one connection} *)

let drive cfg ct sess_list =
  let cl = Client.connect ~host:cfg.host ~port:cfg.port in
  let by_sid = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_sid s.sid s) sess_list;
  let n = List.length sess_list in
  let abandon () =
    List.iter (fun s -> finish ct s) sess_list
  in
  let last_progress = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if ct.c_done < n && List.exists (fun s -> not s.done_) sess_list then begin
      let now = Unix.gettimeofday () in
      List.iter (advance cfg cl ct now) sess_list;
      (* wait bound: the soonest client-side timer, else a coarse poll *)
      let timeout =
        List.fold_left
          (fun acc s ->
            if s.done_ || s.outstanding <> None then acc
            else min acc (max 0.0005 (s.due -. now)))
          0.05 sess_list
      in
      match Client.recv ~timeout_s:timeout cl with
      | Error _ ->
        ct.c_proto <- ct.c_proto + 1;
        abandon ()
      | Ok None ->
        if
          Unix.gettimeofday () -. !last_progress > 30.
          && List.exists (fun s -> s.outstanding <> None) sess_list
        then abandon () (* server unresponsive; bail rather than hang *)
        else loop ()
      | Ok (Some (sid, req, resp)) -> (
        last_progress := Unix.gettimeofday ();
        (match Hashtbl.find_opt by_sid sid with
        | Some s -> (
          match s.outstanding with
          | Some (r, await) when r = req ->
            s.outstanding <- None;
            on_reply cfg ct (Unix.gettimeofday ()) s await resp
          | _ -> () (* stale reply (e.g. after abandon); drop *))
        | None -> ());
        loop ())
    end
  in
  (try loop () with Unix.Unix_error (_, _, _) -> abandon ());
  Client.close cl

(* {2 Running} *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float n)))

let run cfg =
  let t0 = Unix.gettimeofday () in
  let conns = max 1 (min cfg.conns cfg.sessions) in
  let groups = Array.make conns [] in
  for gid = cfg.sessions - 1 downto 0 do
    let rng = Random.State.make [| 0x10ad; cfg.seed; gid |] in
    let s =
      {
        sid = gid;  (* globally unique; fine to scope per connection *)
        gid;
        level = pick_level cfg rng;
        rng;
        opened = false;
        leveled = false;
        in_txn = false;
        txn_i = 0;
        attempt = 1;
        ops_left = [];
        env = Program.empty_env;
        begin_s = 0.;
        due = 0.;
        outstanding = None;
        done_ = false;
      }
    in
    let c = gid mod conns in
    groups.(c) <- s :: groups.(c)
  done;
  let counters =
    Array.init conns (fun _ ->
        {
          c_committed = 0;
          c_aborted = 0;
          c_giveups = 0;
          c_draining = 0;
          c_proto = 0;
          c_requests = 0;
          c_latencies_ms = [];
          c_done = 0;
        })
  in
  let threads =
    Array.to_list
      (Array.mapi
         (fun i group -> Thread.create (fun () -> drive cfg counters.(i) group) ())
         groups)
  in
  (* The progress reporter reads the driver threads' counters without a
     lock: plain int fields are individually atomic in OCaml, and
     {!Telemetry.Window.delta} tolerates the cross-counter skew. *)
  let progress_stop = ref false in
  let progress_thread =
    if cfg.progress_s <= 0. then None
    else
      Some
        (Thread.create
           (fun () ->
             let sum f = Array.fold_left (fun a c -> a + f c) 0 counters in
             let cut () : Telemetry.Window.sample =
               {
                 at = Unix.gettimeofday ();
                 committed = sum (fun c -> c.c_committed);
                 aborted = sum (fun c -> c.c_aborted);
                 aborted_by = [];
                 retries = 0;
                 giveups = sum (fun c -> c.c_giveups);
                 deadlocks = 0;
                 stalls = 0;
                 certifier_aborts = 0;
                 per_level = [];
                 lat_hist = [||];
               }
             in
             let prev = ref (cut ()) in
             let next = ref ((!prev).at +. cfg.progress_s) in
             let total = cfg.sessions * cfg.txns_per_session in
             while not !progress_stop do
               Thread.delay (min 0.1 cfg.progress_s);
               let now = Unix.gettimeofday () in
               if (not !progress_stop) && now >= !next then begin
                 let s = cut () in
                 (* progress-vs-RSS: the million-transaction preset's
                    flat-memory evidence, one line per interval (the
                    generator's own RSS — the server reports its side
                    through STATS/telemetry) *)
                 Fmt.epr "loadgen: %a | %d/%d txns (%.1f%%), rss %d MiB@."
                   Telemetry.Window.pp_rates
                   (Telemetry.Window.delta !prev s)
                   s.Telemetry.Window.committed total
                   (100. *. float s.Telemetry.Window.committed
                   /. float (max 1 total))
                   (Runtime.Sysmem.vm_rss_kb () / 1024);
                 prev := s;
                 next := now +. cfg.progress_s
               end
             done)
           ())
  in
  List.iter Thread.join threads;
  (match progress_thread with
  | None -> ()
  | Some th ->
    progress_stop := true;
    Thread.join th);
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 counters in
  let lats =
    Array.fold_left (fun a c -> List.rev_append c.c_latencies_ms a) [] counters
  in
  let sorted = Array.of_list lats in
  Array.sort compare sorted;
  let committed = sum (fun c -> c.c_committed) in
  {
    sessions = cfg.sessions;
    committed;
    aborted = sum (fun c -> c.c_aborted);
    giveups = sum (fun c -> c.c_giveups);
    draining_rejects = sum (fun c -> c.c_draining);
    protocol_errors = sum (fun c -> c.c_proto);
    requests = sum (fun c -> c.c_requests);
    wall_s;
    throughput = (if wall_s > 0. then float committed /. wall_s else 0.);
    p50_ms = percentile sorted 0.50;
    p95_ms = percentile sorted 0.95;
    p99_ms = percentile sorted 0.99;
  }
