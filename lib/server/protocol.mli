(** The wire protocol: length-prefixed binary frames.

    Grammar (all integers big-endian):

    {v
    frame    := len:u32 payload            len = |payload|, 9 <= len <= 2^20
    payload  := opcode:u8 sid:u32 req:u32 body
    string   := len:u16 bytes
    lstring  := len:u32 bytes
    value    := i64

    requests (client -> server)
      1  OPEN                              open session [sid]
      2  CLOSE                             close it (aborts an open txn)
      3  SET_LEVEL   level:string          SET TRANSACTION ISOLATION LEVEL
      4  BEGIN       ro:u8 attempt:u32 name:string
      5  READ        key:string
      6  WRITE       key:string value
      7  INSERT      key:string value
      8  DELETE      key:string
      9  PREDICATE   form:u8 ...           form 0: name:string (registry)
                                           form 1: name lo:string hi?:u8 [hi:string]
      10 COMMIT
      11 ABORT
      12 STATS                             admin: live telemetry (sid 0)

    responses (server -> client, echoing sid and req)
      0x81 OK
      0x82 VALUE     present:u8 [value]
      0x83 ROWS      count:u32 (key:string value)*
      0x84 COMMITTED
      0x85 ABORTED   reason:string
      0x86 ERROR     code:u8 msg:string
      0x87 STATS     json:lstring
    v}

    The session id multiplexes many sessions over one connection
    (sessions ≫ file descriptors); the echoed request id lets clients
    pipeline requests across sessions and pair replies back up.
    Decoding never raises: malformed input becomes [Error msg], so the
    server answers with a protocol error and closes cleanly. *)

val max_frame : int
(** Payload-size ceiling (1 MiB): a frame whose length prefix exceeds it
    is corrupt by definition. *)

val min_frame : int
(** Smallest well-formed payload (the 9-byte header). *)

type pred =
  | Named of string
      (** resolved against the server's predicate registry ("all" is
          pre-registered) *)
  | Range of { name : string; lo : string; hi : string option }
      (** rows with [lo <= key < hi]; [None] is unbounded above *)

type request =
  | Open
  | Close
  | Set_level of string
  | Begin of { read_only : bool; attempt : int; name : string }
  | Read of string
  | Write of string * int
  | Insert of string * int
  | Delete of string
  | Predicate of pred
  | Commit
  | Abort
  | Stats
      (** admin: ask for a live telemetry snapshot. Addressed to the
          server rather than a session — send it with [sid 0]; the
          response echoes whatever sid/req the request carried, so it
          pipelines like any other request. *)

type response =
  | Ok_resp
  | Value of int option           (** read result; [None] = absent row *)
  | Rows of (string * int) list   (** predicate scan result *)
  | Committed
  | Aborted of string             (** abort reason slug *)
  | Error of { code : int; msg : string }
  | Stats_resp of string
      (** the telemetry report: one JSON object
          ({!Telemetry.Report.to_json} shape), u32-length-prefixed on
          the wire so it may exceed the u16 string cap *)

(** {2 Error codes} *)

val err_malformed : int
(** unparseable frame; the connection closes *)

val err_bad_state : int
(** request illegal in the session's state *)

val err_unknown : int
(** unknown level or predicate name *)

val err_draining : int
(** server shutting down; no new transactions *)

val err_server : int
val err_name : int -> string

(** {2 Codec} *)

val encode_request : sid:int -> req:int -> request -> Bytes.t
(** The full frame, length prefix included. *)

val encode_response : sid:int -> req:int -> response -> Bytes.t

val decode_request : Bytes.t -> (int * int * request, string) result
(** Decode one payload (the bytes after the length prefix) into
    [(sid, req, request)]. Total: malformed input is [Error _]. *)

val decode_response : Bytes.t -> (int * int * response, string) result

(** {2 Incremental frame reader}

    Feed raw socket bytes in, pull complete frames out. [`Corrupt] is
    sticky in intent: the connection cannot be resynchronized after a
    bad length prefix, so the caller should error out and close. *)
module Reader : sig
  type t

  val create : unit -> t
  val feed : t -> Bytes.t -> pos:int -> len:int -> unit

  val next : t -> [ `Frame of Bytes.t | `Awaiting | `Corrupt of string ]
  (** [`Frame payload] hands back one payload (length prefix stripped);
      call again — several frames may be buffered. [`Awaiting] means
      more bytes are needed. *)
end

val pp_request : request Fmt.t
val pp_response : response Fmt.t
