(** Write-ahead log with before/after images, making the paper's recovery
    argument for P0 (§3) executable.

    {2 Torn-tail semantics}

    A crash can cut the log mid-append: the newest record's header (its
    type and transaction id) is readable but its payload is not durable.
    [prefix]/[torn_prefix] build such crash images; [intact] and
    [torn_tail] split a log into the records a recovery manager may
    believe and the torn one it must not. Because records are logged
    before the store is written (WAL discipline), a torn [Update] means
    the corresponding data write never happened, and a torn
    [Commit]/[Abort] never took effect — so [committed], [aborted] and
    [losers] are computed over the intact records only. In particular a
    transaction whose terminal record is the torn tail is still in
    flight and must be undone.

    The multiversion records obey the same rule. A version reaches the
    log as [Vinstall] (installed, uncommitted) and becomes visible only
    with the transaction's [Vcommit] stamp; a torn [Vinstall] means the
    version never existed, and a transaction whose [Vinstall]s are
    intact but whose [Vcommit] is torn (or missing) is in flight — its
    installed versions never became visible and recovery must discard
    them. That is the MV form of the restore-or-not rule: there is
    nothing to restore, only unstamped versions to drop.

    {2 Backends}

    [create ()] is the original in-memory log. [create ~dir ()] appends
    to segmented on-disk files instead — u32-length-prefixed binary
    records, a new segment every [segment_bytes], the finished segment
    fsync'd at rotation — with durability batched by {!sync} (group
    commit) and the log kept bounded by {!checkpoint} truncation. Crash
    images built from a disk log ([prefix]/[torn_prefix]/[load]) are
    in-memory logs, so everything downstream (recovery, crash-point
    enumeration) is backend-agnostic. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn
  | Checkpoint of {
      image : (key * value) list;
          (** committed store image at the checkpoint *)
      active : (txn * (key * value option) list) list;
          (** still-active transactions and their undo journals
              (key, before-image), newest first *)
    }
      (** A checkpoint record makes every earlier record redundant: replay
          starts from [image], and a carried active transaction that never
          reaches an intact terminal record is undone from its carried
          journal. Written by {!checkpoint}, which also truncates. *)
  | Vinstall of { t : txn; k : key; value : value option }
      (** A multiversion engine installed a version of [k] ([None] is a
          tombstone). Not yet visible: visibility needs the writer's
          {!constructor-Vcommit} stamp. *)
  | Vcommit of { t : txn; ts : int }
      (** Terminal record of a committed multiversion transaction: every
          [Vinstall] it logged becomes visible at Commit-Timestamp
          [ts]. *)
  | Watermark of int
      (** The snapshot watermark advanced: versions buried below it were
          pruned and no post-crash snapshot may start below it. *)
  | Vcheckpoint of {
      chains : (key * Version_store.version list) list;
          (** per-key committed version chains, newest first *)
      next_ts : int;  (** commit-timestamp clock at the checkpoint *)
      watermark : int;  (** snapshot watermark at the checkpoint *)
      active : txn list;
          (** transactions in flight — their writes are privately
              buffered (not in the chains), so unlike
              {!constructor-Checkpoint} no undo journal is carried *)
    }
      (** The multiversion checkpoint: replay starts from [chains].
          Written by {!checkpoint_record}, which also truncates. *)

val pp_record : record Fmt.t

type t

val create :
  ?dir:string -> ?segment_bytes:int -> ?group_commit:bool -> unit -> t
(** No [dir]: in-memory log, as before. With [dir] (created if missing):
    segmented on-disk log rotating every [segment_bytes] (default 4 MiB,
    min 512 B). [group_commit] (default [true]) batches concurrent
    {!sync} calls into one fsync; [false] is the per-commit-fsync
    baseline. *)

val append : t -> record -> unit
(** Buffers to the current segment on the disk backend — durable only
    after {!sync} (or a segment rotation). *)

val sync : t -> unit
(** Group commit: make every record appended so far durable. The first
    caller becomes the leader and fsyncs once for the whole batch;
    concurrent callers covered by that batch return without their own
    fsync. No-op on the in-memory backend. *)

val checkpoint :
  t ->
  image:(key * value) list ->
  active:(txn * (key * value option) list) list ->
  unit
(** Write a [Checkpoint] record at the head of a fresh segment and unlink
    every segment wholly below it; the in-memory backend drops the
    records list behind the checkpoint. The caller must pass a consistent
    committed [image] and the undo journals of the transactions [active]
    at that instant (the lock engine holds all stripes when it calls
    this). *)

val checkpoint_record : t -> record -> unit
(** The general form of {!checkpoint}: write any record that fully
    captures the replay base ([Checkpoint] or [Vcheckpoint]) at the head
    of a fresh segment and truncate everything below it. *)

val close : t -> unit
(** Flush and close the disk backend. No-op in memory. *)

val load : dir:string -> t
(** Reopen a log directory after a crash: decode the surviving segments
    into an in-memory log image. A trailing partially-written record is
    dropped — it never became durable. *)

val records : t -> record list
(** In append order, including the torn tail when there is one. The disk
    backend decodes its live segments (post-truncation). *)

val intact : t -> record list
(** In append order, excluding the torn tail: the trustworthy log. *)

val torn_tail : t -> record option
(** The torn newest record of a crash image built by [torn_prefix];
    [None] for a live log or an untorn prefix. *)

val length : t -> int
(** Live (post-truncation) record count. O(1). *)

val committed : t -> txn list
(** Transactions with an intact [Commit] or [Vcommit]. A terminal record
    torn off the tail never took effect. *)

val aborted : t -> txn list

val losers : t -> txn list
(** Transactions with an intact [Begin] — or carried in a leading
    [Checkpoint]/[Vcheckpoint]'s active list — but no intact terminal
    record ([Commit], [Vcommit] or [Abort]): in flight at the crash.
    Includes a transaction whose terminal record is the torn tail, and a
    multiversion transaction whose [Vinstall]s survived without their
    [Vcommit] stamp — its versions never became visible. *)

val prefix : t -> int -> t
(** [prefix log n] is the crash image after exactly the first [n] records
    were made durable, [0 <= n <= length log]. Raises [Invalid_argument]
    out of range. *)

val torn_prefix : t -> int -> t
(** [torn_prefix log n] is the crash image where the [n]-th record was
    torn mid-write: records [1..n-1] are intact, record [n] is the torn
    tail, [1 <= n <= length log]. Raises [Invalid_argument] out of
    range. *)

type stats = {
  w_records : int;  (** live records, post-truncation *)
  w_segments : int;  (** live segment files (0 in memory) *)
  w_disk_bytes : int;  (** bytes across live segments *)
  w_syncs : int;  (** fsync batches issued by {!sync} *)
  w_checkpoints : int;
  w_truncated_segments : int;  (** segments unlinked below checkpoints *)
  w_batch_hist : (int * int) list;
      (** (commit-batch-size bucket upper bound, fsyncs): the group-commit
          evidence — at high concurrency the mass sits in buckets > 1 *)
}

val stats : t -> stats
val pp : t Fmt.t
