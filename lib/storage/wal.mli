(** Write-ahead log with before/after images, making the paper's recovery
    argument for P0 (§3) executable.

    {2 Torn-tail semantics}

    A crash can cut the log mid-append: the newest record's header (its
    type and transaction id) is readable but its payload is not durable.
    [prefix]/[torn_prefix] build such crash images; [intact] and
    [torn_tail] split a log into the records a recovery manager may
    believe and the torn one it must not. Because records are logged
    before the store is written (WAL discipline), a torn [Update] means
    the corresponding data write never happened, and a torn
    [Commit]/[Abort] never took effect — so [committed], [aborted] and
    [losers] are computed over the intact records only. In particular a
    transaction whose terminal record is the torn tail is still in
    flight and must be undone. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn

val pp_record : record Fmt.t

type t

val create : unit -> t
val append : t -> record -> unit

val records : t -> record list
(** In append order, including the torn tail when there is one. *)

val intact : t -> record list
(** In append order, excluding the torn tail: the trustworthy log. *)

val torn_tail : t -> record option
(** The torn newest record of a crash image built by [torn_prefix];
    [None] for a live log or an untorn prefix. *)

val length : t -> int

val committed : t -> txn list
(** Transactions with an intact [Commit]. A [Commit] torn off the tail
    never took effect. *)

val aborted : t -> txn list

val losers : t -> txn list
(** Transactions with an intact [Begin] but no intact terminal record —
    in flight at the crash. Includes a transaction whose [Commit] or
    [Abort] is the torn tail. *)

val prefix : t -> int -> t
(** [prefix log n] is the crash image after exactly the first [n] records
    were made durable, [0 <= n <= length log]. Raises [Invalid_argument]
    out of range. *)

val torn_prefix : t -> int -> t
(** [torn_prefix log n] is the crash image where the [n]-th record was
    torn mid-write: records [1..n-1] are intact, record [n] is the torn
    tail, [1 <= n <= length log]. Raises [Invalid_argument] out of
    range. *)

val pp : t Fmt.t
