(** Before-image undo recovery — executable form of the paper's §3
    argument that P0 (dirty writes) must be excluded at every isolation
    level or recovery by restoring before-images is unsound.

    Recovery believes only the intact records of the log: a torn tail
    never took effect (and under WAL discipline its store write never
    happened), so the transaction it belongs to is treated as in flight.
    See {!Wal} for torn-tail semantics.

    A truncated log (leading {!Wal.record.Checkpoint}) replays from the
    checkpoint image; carried active transactions without an intact
    terminal record are undone from their carried journals. *)

type outcome = {
  state : Store.t;        (** state after recovery *)
  undone : Wal.txn list;  (** transactions rolled back *)
}

val replay : initial:Store.t -> Wal.t -> Store.t
(** The state at the crash: every logged update applied in order. *)

val recover : initial:Store.t -> Wal.t -> outcome
(** Undo losers (in-flight transactions) by restoring before-images,
    newest first; aborted transactions were compensated at run time.
    Sound only in the absence of dirty writes. *)

val ideal_state : initial:Store.t -> Wal.t -> Store.t
(** The correct post-crash state: committed transactions' updates only. *)

val recovery_correct : initial:Store.t -> Wal.t -> bool
(** Does before-image undo reproduce the ideal state? False for P0
    histories such as [w1[x] w2[x]] with T1 in flight at the crash. *)

(** {2 Multiversion recovery}

    Redo-only: versions are installed at commit and become visible only
    with their {!Wal.record.Vcommit} stamp, so recovery buffers each
    transaction's intact [Vinstall]s, installs them when the stamp
    arrives, and discards them on [Abort] — or when the log ends without
    a stamp. In particular a torn [Vinstall] never existed, and a
    transaction whose [Vinstall]s are intact but whose [Vcommit] is torn
    or missing is in flight: its installed versions never became visible
    and are dropped (the MV form of {!Wal.losers}' torn-terminal rule).
    [Watermark] records replay the engine's prunes so post-crash
    snapshots can never read below the recovered watermark. *)

type mv_outcome = {
  vstate : Version_store.t;  (** recovered version store *)
  next_ts : int;  (** recovered commit-timestamp clock *)
  watermark : int;  (** recovered snapshot watermark — no post-crash
                        transaction may start below it *)
  mv_undone : Wal.txn list;  (** in-flight transactions discarded *)
}

val recover_mv : initial:(Wal.key * Wal.value) list -> Wal.t -> mv_outcome
(** Rebuild the version store from the log: a leading
    {!Wal.record.Vcheckpoint}'s chains (else [initial] as version 0),
    then stamped installs, aborts and watermark prunes in order. *)

val ideal_mv : initial:(Wal.key * Wal.value) list -> Wal.t -> Version_store.t
(** The correct post-crash version store: committed transactions'
    stamped write sets only, pruned once at the final watermark. Equal
    to {!recover_mv}'s incremental replay by prune monotonicity. *)

val mv_recovery_correct : initial:(Wal.key * Wal.value) list -> Wal.t -> bool
(** Does {!recover_mv} reproduce {!ideal_mv}, compared by exact chain
    equality ({!Version_store.equal})? *)
