(** Before-image undo recovery — executable form of the paper's §3
    argument that P0 (dirty writes) must be excluded at every isolation
    level or recovery by restoring before-images is unsound.

    Recovery believes only the intact records of the log: a torn tail
    never took effect (and under WAL discipline its store write never
    happened), so the transaction it belongs to is treated as in flight.
    See {!Wal} for torn-tail semantics.

    A truncated log (leading {!Wal.record.Checkpoint}) replays from the
    checkpoint image; carried active transactions without an intact
    terminal record are undone from their carried journals. *)

type outcome = {
  state : Store.t;        (** state after recovery *)
  undone : Wal.txn list;  (** transactions rolled back *)
}

val replay : initial:Store.t -> Wal.t -> Store.t
(** The state at the crash: every logged update applied in order. *)

val recover : initial:Store.t -> Wal.t -> outcome
(** Undo losers (in-flight transactions) by restoring before-images,
    newest first; aborted transactions were compensated at run time.
    Sound only in the absence of dirty writes. *)

val ideal_state : initial:Store.t -> Wal.t -> Store.t
(** The correct post-crash state: committed transactions' updates only. *)

val recovery_correct : initial:Store.t -> Wal.t -> bool
(** Does before-image undo reproduce the ideal state? False for P0
    histories such as [w1[x] w2[x]] with T1 in flight at the crash. *)
