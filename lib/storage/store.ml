(* Single-version store: the database a locking scheduler updates in
   place. Rows are (key, value) with explicit presence, so inserts and
   deletes are representable and predicate scans see exactly the present
   rows.

   Backed by B+ trees, so ordered scans and the successor queries that
   next-key locking relies on are index operations, not sorts.

   The store is sharded by key hash ({!Shard.of_key}) so the multicore
   runtime's striped execution can touch distinct keys concurrently:
   point operations reach exactly one shard, which the caller protects
   with that shard's stripe mutex, while cross-shard operations (scans,
   successor queries, [to_list]) merge over every shard and are only
   called with every stripe held. The default is one shard — the
   single-threaded executor and the tests see exactly the old store. *)

type key = History.Action.key
type value = History.Action.value

type t = value Btree.t array

let create ?(shards = 1) () : t =
  Array.init (max 1 shards) (fun _ -> Btree.create ())

let shards (s : t) = Array.length s
let shard_of_key (s : t) k = Shard.of_key ~shards:(Array.length s) k
let tree (s : t) k = s.(shard_of_key s k)

let of_list ?shards rows =
  let s = create ?shards () in
  List.iter (fun (k, v) -> Btree.insert (tree s k) k v) rows;
  s

let get (s : t) k = Btree.find (tree s k) k
let mem (s : t) k = Btree.mem (tree s k) k
let put (s : t) k v = Btree.insert (tree s k) k v
let delete (s : t) k = ignore (Btree.remove (tree s k) k)

(* Restore a row to a previous state, as undo does: [None] removes it. *)
let restore (s : t) k = function
  | None -> delete s k
  | Some v -> put s k v

(* Merge the shards' sorted bindings into one sorted list. Point reads
   never pay for this; only scans and snapshots do. *)
let merge (lists : (key * value) list list) =
  match lists with
  | [ one ] -> one
  | lists -> List.sort (fun (a, _) (b, _) -> compare a b) (List.concat lists)

let to_list (s : t) =
  merge (Array.to_list (Array.map Btree.to_list s))

let keys s = List.map fst (to_list s)

(* The smallest present key greater than or equal to [k] — the "next key"
   that gap (next-key) locking guards. With several shards, the global
   successor is the least of the per-shard successors. *)
let next_key_geq (s : t) k =
  Array.fold_left
    (fun best tree ->
      match (best, Btree.successor tree k) with
      | None, found -> Option.map fst found
      | best, None -> best
      | Some b, Some (k', _) -> Some (min b k'))
    None s

let scan (s : t) (p : Predicate.t) =
  (* Range predicates scan only their index range; others scan all. *)
  let per_shard tree =
    match Predicate.range_bounds p with
    | Some (lo, hi) ->
      List.filter (fun (k, v) -> p.Predicate.satisfies k v) (Btree.range tree ~lo ~hi)
    | None -> List.filter (fun (k, v) -> p.Predicate.satisfies k v) (Btree.to_list tree)
  in
  merge (Array.to_list (Array.map per_shard s))

let copy (s : t) = Array.map Btree.copy s
let equal (a : t) (b : t) = to_list a = to_list b

let pp ppf s =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int))
    (to_list s)
