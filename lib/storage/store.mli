(** Single-version store: the database a locking scheduler updates in
    place. Rows have explicit presence, so inserts, deletes and predicate
    scans over present rows are all representable.

    The store is sharded by key hash ({!Shard.of_key}): point operations
    touch exactly the key's shard, so a striped caller that holds the
    key's stripe mutex can run them concurrently with operations on other
    shards. Cross-shard operations ([scan], [next_key_geq], [to_list],
    [keys], [equal], [pp]) read every shard and must only run with every
    stripe held. With the default single shard the store behaves exactly
    as before sharding. *)

type key = History.Action.key
type value = History.Action.value
type t

val create : ?shards:int -> unit -> t
(** [create ~shards ()] makes a store with [max 1 shards] shards
    (default 1). *)

val of_list : ?shards:int -> (key * value) list -> t

val shards : t -> int
val shard_of_key : t -> key -> int
(** The shard a key lives in — {!Shard.of_key} over this store's shard
    count, shared with the runtime's stripe map. *)

val get : t -> key -> value option
val mem : t -> key -> bool
val put : t -> key -> value -> unit
val delete : t -> key -> unit

val restore : t -> key -> value option -> unit
(** Restore a row to a previous state ([None] removes it) — the undo
    primitive. *)

val to_list : t -> (key * value) list
(** Rows sorted by key. *)

val keys : t -> key list
val next_key_geq : t -> key -> key option
(** The smallest present key [>= k] — the "next key" that gap locking
    guards. *)

val scan : t -> Predicate.t -> (key * value) list
val copy : t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
