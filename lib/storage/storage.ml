(* Umbrella module of the [storage] library: predicates, the
   single-version store, the multiversion store, the write-ahead log and
   before-image recovery. *)

module Predicate = Predicate
module Btree = Btree
module Shard = Shard
module Store = Store
module Version_store = Version_store
module Wal = Wal
module Recovery = Recovery
