(* Before-image undo recovery, and the demonstration that it is sound only
   when dirty writes (P0) are excluded.

   The recovery algorithm is the classical one the paper assumes in §3:
   starting from the state at the crash, undo every update of every loser
   (in-flight transaction) by restoring before-images, newest first.
   Transactions aborted before the crash were already rolled back at run
   time, and that rollback is logged as compensation updates, so replay
   reconstructs the crash-time state faithfully.

   Only the intact records of the log are believed: a torn tail (a record
   cut mid-write by the crash) carries no durable payload, and under WAL
   discipline its data write never reached the store either — so torn
   records simply do not exist for recovery. See Wal's torn-tail notes.

   Checkpoints. A truncated log's first intact record is a Checkpoint
   carrying the store image at that instant plus, for each transaction
   then active, the before-images of its writes so far (its undo
   journal). Replay starts from the image instead of the initial
   database. A carried transaction that commits later is already fully
   accounted for (pre-checkpoint writes in the image, later ones in the
   log); one that aborted later was rolled back at run time and its
   compensation updates are in the log; one with no intact terminal
   record is a loser whose pre-checkpoint writes only the carried journal
   can undo. A checkpoint seen mid-log (not leading) is a consistency
   no-op: its image equals the replay of everything before it.

   With long write locks (no P0), each item's updates by different
   transactions never interleave, so before-images compose correctly.
   Under P0 they do not: for the log of w1[x] w2[x] with T1 in flight at
   the crash and T2 committed, restoring T1's before-image wipes out T2's
   committed update — and not restoring it would strand T1's value. This
   is exactly the paper's restore-or-not dilemma.

   Membership tests go through hash tables rather than List.mem: crash
   enumeration (Fault.Crash) runs recover at every prefix of a stress
   run's log, so each pass must stay linear in the log. *)

type outcome = {
  state : Store.t;          (* state after recovery *)
  undone : Wal.txn list;    (* transactions rolled back *)
}

let txn_set txns =
  let h = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace h t ()) txns;
  h

(* Split the intact log into its replay base and the records after it: a
   leading checkpoint's image replaces [initial], and its active list
   carries the undo journals recovery may need. *)
let base_of ~initial intact =
  match intact with
  | Wal.Checkpoint { image; active } :: rest ->
    (Store.of_list ~shards:(Store.shards initial) image, active, rest)
  | rest -> (Store.copy initial, [], rest)

(* Apply the log forward to reconstruct the state at the crash, starting
   from the replay base. *)
let replay ~initial log =
  let s, _, rest = base_of ~initial (Wal.intact log) in
  List.iter
    (function
      | Wal.Update { k; after; _ } -> Store.restore s k after
      | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ | Wal.Checkpoint _ -> ())
    rest;
  s

(* Undo losers by restoring before-images, newest first: first their
   logged post-checkpoint updates, then the carried journals for their
   pre-checkpoint writes. Aborted transactions were compensated at run
   time and need no further undo. *)
let recover ~initial log =
  let intact = Wal.intact log in
  let state, carried, rest = base_of ~initial intact in
  List.iter
    (function
      | Wal.Update { k; after; _ } -> Store.restore state k after
      | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ | Wal.Checkpoint _ -> ())
    rest;
  let to_undo = Wal.losers log in
  let losing = txn_set to_undo in
  List.iter
    (function
      | Wal.Update { t; k; before; _ } when Hashtbl.mem losing t ->
        Store.restore state k before
      | Wal.Update _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _
      | Wal.Checkpoint _ -> ())
    (List.rev rest);
  List.iter
    (fun (t, journal) ->
      if Hashtbl.mem losing t then
        List.iter (fun (k, before) -> Store.restore state k before) journal)
    carried;
  { state; undone = List.sort_uniq compare to_undo }

(* The correct post-crash state, for comparison: the committed image. From
   the base, first strip the uncommitted writes a leading checkpoint baked
   into its image (every carried transaction without an intact Commit —
   losers and the later-aborted alike, since compensation updates are not
   replayed here), then apply committed transactions' updates in order.
   This is what a recovery manager is supposed to produce. *)
let ideal_state ~initial log =
  let intact = Wal.intact log in
  let s, carried, rest = base_of ~initial intact in
  let committed = txn_set (Wal.committed log) in
  List.iter
    (fun (t, journal) ->
      if not (Hashtbl.mem committed t) then
        List.iter (fun (k, before) -> Store.restore s k before) journal)
    carried;
  List.iter
    (function
      | Wal.Update { t; k; after; _ } when Hashtbl.mem committed t ->
        Store.restore s k after
      | Wal.Update _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _
      | Wal.Checkpoint _ -> ())
    rest;
  s

(* Recovery is correct when before-image undo reproduces the ideal state. *)
let recovery_correct ~initial log =
  Store.equal (recover ~initial log).state (ideal_state ~initial log)
