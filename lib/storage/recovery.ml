(* Before-image undo recovery, and the demonstration that it is sound only
   when dirty writes (P0) are excluded.

   The recovery algorithm is the classical one the paper assumes in §3:
   starting from the state at the crash, undo every update of every loser
   (in-flight transaction) by restoring before-images, newest first.
   Transactions aborted before the crash were already rolled back at run
   time, and that rollback is logged as compensation updates, so replay
   reconstructs the crash-time state faithfully.

   Only the intact records of the log are believed: a torn tail (a record
   cut mid-write by the crash) carries no durable payload, and under WAL
   discipline its data write never reached the store either — so torn
   records simply do not exist for recovery. See Wal's torn-tail notes.

   With long write locks (no P0), each item's updates by different
   transactions never interleave, so before-images compose correctly.
   Under P0 they do not: for the log of w1[x] w2[x] with T1 in flight at
   the crash and T2 committed, restoring T1's before-image wipes out T2's
   committed update — and not restoring it would strand T1's value. This
   is exactly the paper's restore-or-not dilemma.

   Membership tests go through hash tables rather than List.mem: crash
   enumeration (Fault.Crash) runs recover at every prefix of a stress
   run's log, so each pass must stay linear in the log. *)

type outcome = {
  state : Store.t;          (* state after recovery *)
  undone : Wal.txn list;    (* transactions rolled back *)
}

let txn_set txns =
  let h = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace h t ()) txns;
  h

(* Apply the log forward to reconstruct the state at the crash, starting
   from the initial database. *)
let replay ~initial log =
  let s = Store.copy initial in
  List.iter
    (function
      | Wal.Update { k; after; _ } -> Store.restore s k after
      | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ())
    (Wal.intact log);
  s

(* Undo losers by restoring before-images, newest first. Aborted
   transactions were compensated at run time and need no further undo. *)
let recover ~initial log =
  let state = replay ~initial log in
  let to_undo = Wal.losers log in
  let losing = txn_set to_undo in
  List.iter
    (function
      | Wal.Update { t; k; before; _ } when Hashtbl.mem losing t ->
        Store.restore state k before
      | Wal.Update _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ())
    (List.rev (Wal.intact log));
  { state; undone = List.sort_uniq compare to_undo }

(* The correct post-crash state, for comparison: replay only the updates of
   committed transactions, in order. This is what a recovery manager is
   supposed to produce. *)
let ideal_state ~initial log =
  let committed = txn_set (Wal.committed log) in
  let s = Store.copy initial in
  List.iter
    (function
      | Wal.Update { t; k; after; _ } when Hashtbl.mem committed t ->
        Store.restore s k after
      | Wal.Update _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ())
    (Wal.intact log);
  s

(* Recovery is correct when before-image undo reproduces the ideal state. *)
let recovery_correct ~initial log =
  Store.equal (recover ~initial log).state (ideal_state ~initial log)
