(* Before-image undo recovery, and the demonstration that it is sound only
   when dirty writes (P0) are excluded.

   The recovery algorithm is the classical one the paper assumes in §3:
   starting from the state at the crash, undo every update of every loser
   (in-flight transaction) by restoring before-images, newest first.
   Transactions aborted before the crash were already rolled back at run
   time, and that rollback is logged as compensation updates, so replay
   reconstructs the crash-time state faithfully.

   Only the intact records of the log are believed: a torn tail (a record
   cut mid-write by the crash) carries no durable payload, and under WAL
   discipline its data write never reached the store either — so torn
   records simply do not exist for recovery. See Wal's torn-tail notes.

   Checkpoints. A truncated log's first intact record is a Checkpoint
   carrying the store image at that instant plus, for each transaction
   then active, the before-images of its writes so far (its undo
   journal). Replay starts from the image instead of the initial
   database. A carried transaction that commits later is already fully
   accounted for (pre-checkpoint writes in the image, later ones in the
   log); one that aborted later was rolled back at run time and its
   compensation updates are in the log; one with no intact terminal
   record is a loser whose pre-checkpoint writes only the carried journal
   can undo. A checkpoint seen mid-log (not leading) is a consistency
   no-op: its image equals the replay of everything before it.

   With long write locks (no P0), each item's updates by different
   transactions never interleave, so before-images compose correctly.
   Under P0 they do not: for the log of w1[x] w2[x] with T1 in flight at
   the crash and T2 committed, restoring T1's before-image wipes out T2's
   committed update — and not restoring it would strand T1's value. This
   is exactly the paper's restore-or-not dilemma.

   Membership tests go through hash tables rather than List.mem: crash
   enumeration (Fault.Crash) runs recover at every prefix of a stress
   run's log, so each pass must stay linear in the log. *)

type outcome = {
  state : Store.t;          (* state after recovery *)
  undone : Wal.txn list;    (* transactions rolled back *)
}

let txn_set txns =
  let h = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace h t ()) txns;
  h

(* Split the intact log into its replay base and the records after it: a
   leading checkpoint's image replaces [initial], and its active list
   carries the undo journals recovery may need. *)
let base_of ~initial intact =
  match intact with
  | Wal.Checkpoint { image; active } :: rest ->
    (Store.of_list ~shards:(Store.shards initial) image, active, rest)
  | rest -> (Store.copy initial, [], rest)

(* Apply the log forward to reconstruct the state at the crash, starting
   from the replay base. The single-version passes only ever act on
   [Update]; versioned records belong to the MV pass below. *)
let replay ~initial log =
  let s, _, rest = base_of ~initial (Wal.intact log) in
  List.iter
    (function
      | Wal.Update { k; after; _ } -> Store.restore s k after
      | _ -> ())
    rest;
  s

(* Undo losers by restoring before-images, newest first: first their
   logged post-checkpoint updates, then the carried journals for their
   pre-checkpoint writes. Aborted transactions were compensated at run
   time and need no further undo. *)
let recover ~initial log =
  let intact = Wal.intact log in
  let state, carried, rest = base_of ~initial intact in
  List.iter
    (function
      | Wal.Update { k; after; _ } -> Store.restore state k after
      | _ -> ())
    rest;
  let to_undo = Wal.losers log in
  let losing = txn_set to_undo in
  List.iter
    (function
      | Wal.Update { t; k; before; _ } when Hashtbl.mem losing t ->
        Store.restore state k before
      | _ -> ())
    (List.rev rest);
  List.iter
    (fun (t, journal) ->
      if Hashtbl.mem losing t then
        List.iter (fun (k, before) -> Store.restore state k before) journal)
    carried;
  { state; undone = List.sort_uniq compare to_undo }

(* The correct post-crash state, for comparison: the committed image. From
   the base, first strip the uncommitted writes a leading checkpoint baked
   into its image (every carried transaction without an intact Commit —
   losers and the later-aborted alike, since compensation updates are not
   replayed here), then apply committed transactions' updates in order.
   This is what a recovery manager is supposed to produce. *)
let ideal_state ~initial log =
  let intact = Wal.intact log in
  let s, carried, rest = base_of ~initial intact in
  let committed = txn_set (Wal.committed log) in
  List.iter
    (fun (t, journal) ->
      if not (Hashtbl.mem committed t) then
        List.iter (fun (k, before) -> Store.restore s k before) journal)
    carried;
  List.iter
    (function
      | Wal.Update { t; k; after; _ } when Hashtbl.mem committed t ->
        Store.restore s k after
      | _ -> ())
    rest;
  s

(* Recovery is correct when before-image undo reproduces the ideal state. *)
let recovery_correct ~initial log =
  Store.equal (recover ~initial log).state (ideal_state ~initial log)

(* {2 Multiversion recovery}

   The version store needs no before-image undo at all: versions are
   installed only at commit and become visible only with their [Vcommit]
   stamp, so recovery is redo-only — buffer each transaction's intact
   [Vinstall]s, install them when its stamp arrives, and drop them on
   [Abort] or when the log ends without a stamp (the torn-version-write
   case: installed but unstamped versions never became visible, and the
   owning transaction is a loser). [Watermark] records replay the prunes
   the engine ran, so the recovered store has buried exactly what the
   live store had buried and post-crash snapshots can never start below
   the recovered watermark. A leading [Vcheckpoint] replaces the initial
   rows with its chains (its active transactions carry no journal —
   their writes were privately buffered and died with the crash). *)

type mv_outcome = {
  vstate : Version_store.t;  (* recovered version store *)
  next_ts : int;             (* recovered commit-timestamp clock *)
  watermark : int;           (* recovered snapshot watermark *)
  mv_undone : Wal.txn list;  (* in-flight transactions discarded *)
}

let mv_base_of ~initial intact =
  match intact with
  | Wal.Vcheckpoint { chains; next_ts; watermark; _ } :: rest ->
    (Version_store.of_chains chains, next_ts, watermark, rest)
  | rest -> (Version_store.of_list initial, 0, 0, rest)

let buffered buf t = Option.value ~default:[] (Hashtbl.find_opt buf t)

let recover_mv ~initial log =
  let s, base_ts, base_wm, rest = mv_base_of ~initial (Wal.intact log) in
  let next_ts = ref base_ts and watermark = ref base_wm in
  let buf = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Vinstall { t; k; value } ->
        Hashtbl.replace buf t ((k, value) :: buffered buf t)
      | Wal.Vcommit { t; ts } ->
        (match buffered buf t with
        | [] -> ()
        | writes -> Version_store.install s ~writer:t ~commit_ts:ts writes);
        Hashtbl.remove buf t;
        if ts > !next_ts then next_ts := ts
      | Wal.Abort t -> Hashtbl.remove buf t
      | Wal.Watermark w ->
        ignore (Version_store.prune s ~horizon:w : int);
        if w > !watermark then watermark := w
      | _ -> ())
    rest;
  {
    vstate = s;
    next_ts = !next_ts;
    watermark = !watermark;
    mv_undone = List.sort_uniq compare (Wal.losers log);
  }

(* The correct post-crash version store, computed the other way around:
   install only committed transactions' stamped write sets, then prune
   once at the final watermark. Prune monotonicity (see
   {!Version_store.prune}) is what makes this equal to [recover_mv]'s
   incremental replay when recovery is sound. *)
let ideal_mv ~initial log =
  let s, _, base_wm, rest = mv_base_of ~initial (Wal.intact log) in
  let committed = txn_set (Wal.committed log) in
  let watermark = ref base_wm in
  let buf = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Vinstall { t; k; value } ->
        Hashtbl.replace buf t ((k, value) :: buffered buf t)
      | Wal.Vcommit { t; ts } when Hashtbl.mem committed t ->
        (match buffered buf t with
        | [] -> ()
        | writes -> Version_store.install s ~writer:t ~commit_ts:ts writes);
        Hashtbl.remove buf t
      | Wal.Watermark w -> if w > !watermark then watermark := w
      | _ -> ())
    rest;
  if !watermark > 0 then ignore (Version_store.prune s ~horizon:!watermark : int);
  s

let mv_recovery_correct ~initial log =
  Version_store.equal (recover_mv ~initial log).vstate (ideal_mv ~initial log)
