(* The one key-to-shard map every striped structure shares.

   The runtime's stripe mutexes, the sharded store and the striped lock
   table must all agree on which shard a key lives in: the pool acquires
   the stripes an operation touches and the engine then reads and writes
   only store shards and lock-table buckets with those indices. Keeping
   the function here — the lowest layer all of them depend on — makes
   that agreement structural rather than a convention. *)

let of_key ~shards k =
  if shards <= 1 then 0 else Hashtbl.hash (k : string) mod shards
