(** The canonical key-to-shard map shared by every striped structure:
    the runtime's stripe mutexes, the sharded {!Store} and the striped
    lock table all index by this function, which is what lets the pool
    guarantee that an engine step only touches shards whose stripes it
    holds. *)

val of_key : shards:int -> string -> int
(** [of_key ~shards k] is the shard index of [k] in [0 .. shards - 1]
    ([0] when [shards <= 1]). *)
