(* Multiversion store (§4.2): each data item carries a chain of committed
   versions stamped with the Commit-Timestamp of their writer. A read at
   timestamp ts observes, for each key, the version with the largest
   commit timestamp <= ts — the snapshot as of ts. Deletes install
   tombstone versions, so phantom analysis works across inserts and
   deletes. Timestamps come from a monotonic counter shared with the
   transaction manager. *)

type key = History.Action.key
type value = History.Action.value
type ts = int

type version = {
  value : value option; (* None is a tombstone: the row was deleted *)
  writer : History.Action.txn;
  commit_ts : ts;
}

type t = {
  chains : version list Btree.t; (* per key, newest first *)
}

let create () = { chains = Btree.create () }

(* Initial rows are version 0, written by the virtual transaction 0 at
   timestamp 0 — the paper's x0. *)
let of_list rows =
  let s = create () in
  List.iter
    (fun (k, v) ->
      Btree.insert s.chains k [ { value = Some v; writer = 0; commit_ts = 0 } ])
    rows;
  s

let chain s k = Option.value ~default:[] (Btree.find s.chains k)

(* Rebuild a store from dumped chains — the MV checkpoint replay base. *)
let of_chains cs =
  let s = create () in
  List.iter (fun (k, vs) -> if vs <> [] then Btree.insert s.chains k vs) cs;
  s

let version_at s ~ts k =
  let rec find = function
    | [] -> None
    | v :: rest -> if v.commit_ts <= ts then Some v else find rest
  in
  find (chain s k)

let read_at s ~ts k =
  match version_at s ~ts k with
  | Some { value; _ } -> value
  | None -> None

let latest s k = match chain s k with [] -> None | v :: _ -> Some v

let read_latest s k =
  match latest s k with Some { value; _ } -> value | None -> None

(* All keys ever seen; scans filter by visibility at the timestamp. *)
let keys s = List.map fst (Btree.to_list s.chains)

let snapshot_at s ~ts =
  List.filter_map
    (fun k ->
      match read_at s ~ts k with Some v -> Some (k, v) | None -> None)
    (keys s)

let scan_at s ~ts (p : Predicate.t) =
  List.filter (fun (k, v) -> p.Predicate.satisfies k v) (snapshot_at s ~ts)

(* Install a transaction's write set at its commit timestamp. *)
let install s ~writer ~commit_ts writes =
  List.iter
    (fun (k, value) ->
      Btree.insert s.chains k ({ value; writer; commit_ts } :: chain s k))
    writes

(* Has any version of [k] committed strictly after [ts]? This is the
   First-Committer-Wins test: a transaction with Start-Timestamp ts must
   abort if a concurrent transaction committed a write of any item it also
   wrote (§4.2). *)
let committed_after s ~ts k =
  match latest s k with Some v -> v.commit_ts > ts | None -> false

(* Every version installed with a commit timestamp after [ts], across all
   keys — the read-validation set for serializable snapshot commits. *)
let versions_committed_after s ~ts =
  List.concat_map
    (fun k ->
      List.filter_map
        (fun v -> if v.commit_ts > ts then Some (k, v) else None)
        (chain s k))
    (keys s)

let writer_at s ~ts k =
  match version_at s ~ts k with Some v -> Some v.writer | None -> None

(* Version garbage collection: drop versions that no snapshot at or after
   [horizon] can observe — everything strictly older than the newest
   version with commit_ts <= horizon, per key. Reads at timestamps >=
   horizon are unaffected; snapshots older than the horizon must no
   longer be served (the engine tracks the oldest active Start-Timestamp
   and passes it here). [prune_collect] returns the dropped versions'
   (key, writer) pairs — what the certifier needs to retire its
   version-order entries; [prune] just counts them.

   Pruning is monotone: pruning at w1 then at w2 >= w1 equals pruning
   once at w2, because the survivor at w1 (the newest version <= w1) is
   either still the newest <= w2 or strictly below a later version that
   is — either way the w2 pass makes the same per-key cut. Recovery
   leans on this: incremental Watermark replays and one final prune
   agree. *)
let prune_collect s ~horizon =
  let dropped = ref [] in
  List.iter
    (fun k ->
      let rec keep = function
        | [] -> []
        | v :: rest ->
          if v.commit_ts <= horizon then begin
            (* [v] is the newest version at or below the horizon: it stays
               (it is what snapshots at the horizon read); everything
               older goes. *)
            List.iter (fun v -> dropped := (k, v.writer) :: !dropped) rest;
            [ v ]
          end
          else v :: keep rest
      in
      Btree.insert s.chains k (keep (chain s k)))
    (keys s);
  !dropped

let prune s ~horizon = List.length (prune_collect s ~horizon)

let version_count s =
  List.fold_left (fun acc k -> acc + List.length (chain s k)) 0 (keys s)

(* Full dump of the chains (empty chains elided), in key order — the MV
   checkpoint image, and the equality witness for recovery checks. *)
let chains s =
  List.filter_map
    (fun k -> match chain s k with [] -> None | vs -> Some (k, vs))
    (keys s)

(* Exact structural equality of the version chains — values, writers and
   commit timestamps all — not just of the latest visible rows. Crash
   checks compare recovered stores with this so a wrong-but-shadowed
   version cannot hide. *)
let equal a b = chains a = chains b

let to_latest_list s =
  List.filter_map
    (fun k ->
      match read_latest s k with Some v -> Some (k, v) | None -> None)
    (keys s)

let pp ppf s =
  let pp_version ppf v =
    Fmt.pf ppf "%a@T%d/ts%d"
      Fmt.(option ~none:(any "del") int)
      v.value v.writer v.commit_ts
  in
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any "; ")
        (pair ~sep:(any ":") string (list ~sep:comma pp_version)))
    (List.map (fun k -> (k, chain s k)) (keys s))
