(** Multiversion store (§4.2 of the paper): per-key chains of committed
    versions stamped with their writer's Commit-Timestamp. A read at
    timestamp [ts] observes the snapshot as of [ts]; deletes install
    tombstones so phantoms work across inserts and deletes. *)

type key = History.Action.key
type value = History.Action.value
type ts = int

type version = {
  value : value option;  (** [None] is a tombstone (deleted row) *)
  writer : History.Action.txn;
  commit_ts : ts;
}

type t

val create : unit -> t

val of_list : (key * value) list -> t
(** Initial rows become version 0, written by the virtual transaction 0 at
    timestamp 0 — the paper's [x0]. *)

val of_chains : (key * version list) list -> t
(** Rebuild a store from dumped chains (newest first per key) — the
    replay base of a {!Wal.record.Vcheckpoint}. *)

val chain : t -> key -> version list
(** Committed versions, newest first. *)

val version_at : t -> ts:ts -> key -> version option
val read_at : t -> ts:ts -> key -> value option
val latest : t -> key -> version option
val read_latest : t -> key -> value option
val keys : t -> key list
val snapshot_at : t -> ts:ts -> (key * value) list
val scan_at : t -> ts:ts -> Predicate.t -> (key * value) list

val install : t -> writer:History.Action.txn -> commit_ts:ts -> (key * value option) list -> unit
(** Install a committed write set ([None] deletes). *)

val committed_after : t -> ts:ts -> key -> bool
(** Has any version of the key committed strictly after [ts]? The
    First-Committer-Wins test (§4.2). *)

val versions_committed_after : t -> ts:ts -> (key * version) list
(** Every version with a commit timestamp strictly after [ts] — the
    read-validation set for serializable snapshot commits. *)

val writer_at : t -> ts:ts -> key -> History.Action.txn option
val prune : t -> horizon:ts -> int
(** Version garbage collection: drop versions no snapshot at or after
    [horizon] can observe, returning how many were dropped. Reads at
    timestamps [>= horizon] are unaffected; older snapshots must no
    longer be served. Monotone: pruning at [w1] then [w2 >= w1] equals
    one prune at [w2]. *)

val prune_collect : t -> horizon:ts -> (key * History.Action.txn) list
(** Like {!prune}, returning the dropped versions' (key, writer) pairs —
    what the certifier's version-order tables retire on. *)

val version_count : t -> int
(** Total versions retained across all keys. *)

val chains : t -> (key * version list) list
(** Every chain, newest first per key, in key order; empty chains
    elided. The MV checkpoint image. *)

val equal : t -> t -> bool
(** Exact structural equality of the chains (values, writers and commit
    timestamps), not just of the latest visible rows. *)

val to_latest_list : t -> (key * value) list
val pp : t Fmt.t
