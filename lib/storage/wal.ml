(* Write-ahead log. The paper's second argument for P0 (§3) is that dirty
   writes break recovery: "you don't want to undo w1[x] by restoring its
   before-image, because that would wipe out w2's update". This log and the
   companion Recovery module make that argument executable. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn

let pp_record ppf = function
  | Begin t -> Fmt.pf ppf "BEGIN(T%d)" t
  | Update { t; k; before; after } ->
    Fmt.pf ppf "UPDATE(T%d, %s, %a -> %a)" t k
      Fmt.(option ~none:(any "absent") int)
      before
      Fmt.(option ~none:(any "absent") int)
      after
  | Commit t -> Fmt.pf ppf "COMMIT(T%d)" t
  | Abort t -> Fmt.pf ppf "ABORT(T%d)" t

(* Appends are serialized by a private mutex: under striped execution,
   transactions updating different shards log concurrently, and the WAL
   is the one log they share. The critical section is a cons. *)
type t = { mutable records : record list (* newest first *); m : Mutex.t }

let create () = { records = []; m = Mutex.create () }

let append log r =
  Mutex.lock log.m;
  log.records <- r :: log.records;
  Mutex.unlock log.m

let records log =
  Mutex.lock log.m;
  let rs = log.records in
  Mutex.unlock log.m;
  List.rev rs

let length log = List.length (records log)

let committed log =
  List.filter_map (function Commit t -> Some t | _ -> None) (records log)

let aborted log =
  List.filter_map (function Abort t -> Some t | _ -> None) (records log)

(* Transactions with a Begin but no terminal record: crashed in flight. *)
let losers log =
  let ended = committed log @ aborted log in
  List.filter_map
    (function Begin t when not (List.mem t ended) -> Some t | _ -> None)
    (records log)

let pp ppf log = Fmt.(list ~sep:sp pp_record) ppf (records log)
