(* Write-ahead log. The paper's second argument for P0 (§3) is that dirty
   writes break recovery: "you don't want to undo w1[x] by restoring its
   before-image, because that would wipe out w2's update". This log and the
   companion Recovery module make that argument executable.

   Torn tails. A crash can land mid-append: the newest record's header
   (its type and transaction id) survives but its payload did not — the
   torn record is visible to the log reader yet must not be trusted.
   [prefix] and [torn_prefix] build exactly these crash images, and the
   accessors split the log into the [intact] records (everything a
   recovery manager may believe) and the [torn_tail]. Because the log is
   written before the store (WAL discipline), a torn [Update] means the
   data write never happened; a torn [Commit]/[Abort] never took effect,
   so its transaction is still in flight and must be undone.

   Backends. The original in-memory log remains the default (and the
   vocabulary for crash images); [create ~dir] instead appends to
   segmented on-disk files — u32-length-prefixed binary records, a new
   segment every [segment_bytes], the finished segment fsync'd at
   rotation — so a million-transaction run never materializes its log in
   memory. Appends only buffer; durability is [sync], which implements
   *group commit*: the first syncing thread becomes the leader, flushes
   and fsyncs once for every commit record buffered so far, and every
   waiter whose commit the batch covered returns without its own fsync.
   [checkpoint] writes a fresh-segment checkpoint record carrying the
   store image and the active transactions' undo images, then unlinks
   every segment wholly below it; the in-memory backend mirrors the same
   truncation by dropping the records list behind the checkpoint, so both
   backends run bounded-memory. Crash images built over a checkpointed
   log lean on Recovery understanding a leading Checkpoint record as the
   replay base. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn
  | Checkpoint of {
      image : (key * value) list;
      active : (txn * (key * value option) list) list;
    }
  (* Versioned records, for the multiversion family. A version reaches
     the log in two steps: [Vinstall] per written key (the version
     exists, uncommitted) and one [Vcommit] carrying the writer's
     Commit-Timestamp (the versions became visible). A crash between the
     two — or a torn [Vcommit] — leaves the transaction in flight: its
     installed-but-unstamped versions never became visible and recovery
     discards them, the multiversion form of the torn-terminal rule. *)
  | Vinstall of { t : txn; k : key; value : value option }
  | Vcommit of { t : txn; ts : int }
  | Watermark of int
      (* the snapshot watermark advanced: versions buried below it were
         pruned, and no post-crash snapshot may start below it *)
  | Vcheckpoint of {
      chains : (key * Version_store.version list) list;
          (* per-key committed version chains, newest first *)
      next_ts : int;    (* the commit-timestamp clock at the checkpoint *)
      watermark : int;  (* snapshot watermark at the checkpoint *)
      active : txn list;
          (* transactions in flight — their writes are privately
             buffered, not in the chains, so no undo journal is needed *)
    }

let pp_record ppf = function
  | Begin t -> Fmt.pf ppf "BEGIN(T%d)" t
  | Update { t; k; before; after } ->
    Fmt.pf ppf "UPDATE(T%d, %s, %a -> %a)" t k
      Fmt.(option ~none:(any "absent") int)
      before
      Fmt.(option ~none:(any "absent") int)
      after
  | Commit t -> Fmt.pf ppf "COMMIT(T%d)" t
  | Abort t -> Fmt.pf ppf "ABORT(T%d)" t
  | Checkpoint { image; active } ->
    Fmt.pf ppf "CHECKPOINT(%d keys, %d active)" (List.length image)
      (List.length active)
  | Vinstall { t; k; value } ->
    Fmt.pf ppf "VINSTALL(T%d, %s, %a)" t k
      Fmt.(option ~none:(any "del") int)
      value
  | Vcommit { t; ts } -> Fmt.pf ppf "VCOMMIT(T%d, ts %d)" t ts
  | Watermark w -> Fmt.pf ppf "WATERMARK(%d)" w
  | Vcheckpoint { chains; watermark; active; _ } ->
    Fmt.pf ppf "VCHECKPOINT(%d keys, wm %d, %d active)" (List.length chains)
      watermark (List.length active)

(* {2 Binary codec}

   Each on-disk record is a u32-LE length followed by the body: a tag
   byte, ints as i64 LE, keys as u16-LE length + bytes, optional values
   as a presence byte. Nothing here is meant to be portable or versioned
   — it is the run's own scratch log — but the length prefix is what
   gives the loader its torn-tail rule: a trailing record whose length or
   body is cut off never became durable. *)

let add_opt b = function
  | None -> Buffer.add_uint8 b 0
  | Some v ->
    Buffer.add_uint8 b 1;
    Buffer.add_int64_le b (Int64.of_int v)

let add_key b k =
  Buffer.add_uint16_le b (String.length k);
  Buffer.add_string b k

let encode_body b = function
  | Begin t ->
    Buffer.add_uint8 b (Char.code 'B');
    Buffer.add_int64_le b (Int64.of_int t)
  | Commit t ->
    Buffer.add_uint8 b (Char.code 'C');
    Buffer.add_int64_le b (Int64.of_int t)
  | Abort t ->
    Buffer.add_uint8 b (Char.code 'A');
    Buffer.add_int64_le b (Int64.of_int t)
  | Update { t; k; before; after } ->
    Buffer.add_uint8 b (Char.code 'U');
    Buffer.add_int64_le b (Int64.of_int t);
    add_key b k;
    add_opt b before;
    add_opt b after
  | Checkpoint { image; active } ->
    Buffer.add_uint8 b (Char.code 'K');
    Buffer.add_int32_le b (Int32.of_int (List.length image));
    List.iter
      (fun (k, v) ->
        add_key b k;
        Buffer.add_int64_le b (Int64.of_int v))
      image;
    Buffer.add_int32_le b (Int32.of_int (List.length active));
    List.iter
      (fun (t, undo) ->
        Buffer.add_int64_le b (Int64.of_int t);
        Buffer.add_int32_le b (Int32.of_int (List.length undo));
        List.iter
          (fun (k, before) ->
            add_key b k;
            add_opt b before)
          undo)
      active
  | Vinstall { t; k; value } ->
    Buffer.add_uint8 b (Char.code 'I');
    Buffer.add_int64_le b (Int64.of_int t);
    add_key b k;
    add_opt b value
  | Vcommit { t; ts } ->
    Buffer.add_uint8 b (Char.code 'V');
    Buffer.add_int64_le b (Int64.of_int t);
    Buffer.add_int64_le b (Int64.of_int ts)
  | Watermark w ->
    Buffer.add_uint8 b (Char.code 'W');
    Buffer.add_int64_le b (Int64.of_int w)
  | Vcheckpoint { chains; next_ts; watermark; active } ->
    Buffer.add_uint8 b (Char.code 'M');
    Buffer.add_int64_le b (Int64.of_int next_ts);
    Buffer.add_int64_le b (Int64.of_int watermark);
    Buffer.add_int32_le b (Int32.of_int (List.length active));
    List.iter (fun t -> Buffer.add_int64_le b (Int64.of_int t)) active;
    Buffer.add_int32_le b (Int32.of_int (List.length chains));
    List.iter
      (fun (k, vs) ->
        add_key b k;
        Buffer.add_int32_le b (Int32.of_int (List.length vs));
        List.iter
          (fun v ->
            add_opt b v.Version_store.value;
            Buffer.add_int64_le b (Int64.of_int v.Version_store.writer);
            Buffer.add_int64_le b (Int64.of_int v.Version_store.commit_ts))
          vs)
      chains

exception Truncated

let get_i64 s pos =
  if !pos + 8 > Bytes.length s then raise Truncated;
  let v = Int64.to_int (Bytes.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let get_u8 s pos =
  if !pos + 1 > Bytes.length s then raise Truncated;
  let v = Bytes.get_uint8 s !pos in
  incr pos;
  v

let get_u32 s pos =
  if !pos + 4 > Bytes.length s then raise Truncated;
  let v = Int32.to_int (Bytes.get_int32_le s !pos) in
  pos := !pos + 4;
  v

let get_key s pos =
  if !pos + 2 > Bytes.length s then raise Truncated;
  let n = Bytes.get_uint16_le s !pos in
  pos := !pos + 2;
  if !pos + n > Bytes.length s then raise Truncated;
  let k = Bytes.sub_string s !pos n in
  pos := !pos + n;
  k

let get_opt s pos =
  match get_u8 s pos with 0 -> None | _ -> Some (get_i64 s pos)

let decode_body s =
  let pos = ref 0 in
  match Char.chr (get_u8 s pos) with
  | 'B' -> Begin (get_i64 s pos)
  | 'C' -> Commit (get_i64 s pos)
  | 'A' -> Abort (get_i64 s pos)
  | 'U' ->
    let t = get_i64 s pos in
    let k = get_key s pos in
    let before = get_opt s pos in
    let after = get_opt s pos in
    Update { t; k; before; after }
  | 'K' ->
    let nk = get_u32 s pos in
    let image =
      List.init nk (fun _ ->
          let k = get_key s pos in
          (k, get_i64 s pos))
    in
    let na = get_u32 s pos in
    let active =
      List.init na (fun _ ->
          let t = get_i64 s pos in
          let nu = get_u32 s pos in
          (t, List.init nu (fun _ ->
               let k = get_key s pos in
               (k, get_opt s pos))))
    in
    Checkpoint { image; active }
  | 'I' ->
    let t = get_i64 s pos in
    let k = get_key s pos in
    Vinstall { t; k; value = get_opt s pos }
  | 'V' ->
    let t = get_i64 s pos in
    Vcommit { t; ts = get_i64 s pos }
  | 'W' -> Watermark (get_i64 s pos)
  | 'M' ->
    let next_ts = get_i64 s pos in
    let watermark = get_i64 s pos in
    let na = get_u32 s pos in
    let active = List.init na (fun _ -> get_i64 s pos) in
    let nk = get_u32 s pos in
    let chains =
      List.init nk (fun _ ->
          let k = get_key s pos in
          let nv = get_u32 s pos in
          ( k,
            List.init nv (fun _ ->
                let value = get_opt s pos in
                let writer = get_i64 s pos in
                { Version_store.value; writer; commit_ts = get_i64 s pos }) ))
    in
    Vcheckpoint { chains; next_ts; watermark; active }
  | _ -> raise Truncated

(* {2 Backends} *)

type disk = {
  dir : string;
  segment_bytes : int;
  group_commit : bool;
  mutable seg_index : int;        (* current segment number *)
  mutable chan : out_channel;
  mutable fd : Unix.file_descr;
  mutable seg_bytes : int;        (* bytes written to the current segment *)
  mutable closed_bytes : int;     (* bytes in closed, still-live segments *)
  mutable segments : int;         (* live segment count, current included *)
  scratch : Buffer.t;
  (* group commit; [sync_m] is never held while [m] is taken *)
  sync_m : Mutex.t;
  sync_cv : Condition.t;
  mutable flushing : bool;
  mutable appended_lsn : int;     (* records appended (buffered) *)
  mutable durable_lsn : int;      (* records known durable *)
  mutable commits_pending : int;  (* commit records since the last flush *)
  mutable syncs : int;
  batch_hist : int array;         (* syncs by log2(commit batch size) *)
  mutable checkpoints : int;
  mutable truncated : int;        (* segments unlinked below checkpoints *)
}

type backend = Mem | Disk of disk

type t = {
  mutable records : record list; (* newest first; read-back cache for Disk *)
  mutable torn : bool;           (* the newest record is a torn tail *)
  m : Mutex.t;
  mutable count : int;
  backend : backend;
}

let batch_buckets = 8 (* 1, 2, 3-4, 5-8, ... 65+ *)

let bucket_of_batch n =
  let rec go b n = if n <= 1 || b >= batch_buckets - 1 then b else go (b + 1) ((n + 1) / 2) in
  go 0 n

let segment_name i = Printf.sprintf "wal-%08d.seg" i

let open_segment dir i =
  let path = Filename.concat dir (segment_name i) in
  let chan =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
      path
  in
  (chan, Unix.descr_of_out_channel chan)

let default_segment_bytes = 4 * 1024 * 1024

let create ?dir ?(segment_bytes = default_segment_bytes)
    ?(group_commit = true) () =
  let backend =
    match dir with
    | None -> Mem
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let chan, fd = open_segment dir 0 in
      Disk
        {
          dir;
          segment_bytes = max 512 segment_bytes;
          group_commit;
          seg_index = 0;
          chan;
          fd;
          seg_bytes = 0;
          closed_bytes = 0;
          segments = 1;
          scratch = Buffer.create 256;
          sync_m = Mutex.create ();
          sync_cv = Condition.create ();
          flushing = false;
          appended_lsn = 0;
          durable_lsn = 0;
          commits_pending = 0;
          syncs = 0;
          batch_hist = Array.make batch_buckets 0;
          checkpoints = 0;
          truncated = 0;
        }
  in
  { records = []; torn = false; m = Mutex.create (); count = 0; backend }

let fsync_quiet fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

(* Holding [t.m]: serialize one record into the current segment, rotating
   (flush + fsync + fresh file) when the segment is full. Rotation leaves
   [durable_lsn] alone — conservative, the next [sync] just re-fsyncs the
   young segment. *)
let disk_write d r =
  Buffer.clear d.scratch;
  encode_body d.scratch r;
  let len = Buffer.length d.scratch in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  output_bytes d.chan hdr;
  Buffer.output_buffer d.chan d.scratch;
  d.seg_bytes <- d.seg_bytes + 4 + len;
  d.appended_lsn <- d.appended_lsn + 1;
  (match r with
  | Commit _ | Vcommit _ -> d.commits_pending <- d.commits_pending + 1
  | _ -> ());
  if d.seg_bytes >= d.segment_bytes then begin
    flush d.chan;
    fsync_quiet d.fd;
    close_out d.chan;
    d.closed_bytes <- d.closed_bytes + d.seg_bytes;
    d.seg_index <- d.seg_index + 1;
    let chan, fd = open_segment d.dir d.seg_index in
    d.chan <- chan;
    d.fd <- fd;
    d.seg_bytes <- 0;
    d.segments <- d.segments + 1
  end

let append log r =
  Mutex.lock log.m;
  (match log.backend with
  | Mem -> log.records <- r :: log.records
  | Disk d -> disk_write d r);
  log.count <- log.count + 1;
  Mutex.unlock log.m

(* {2 Group commit}

   The caller of [sync] needs every record it has appended to be durable.
   Capture the append LSN, then race to become the flusher: the leader
   flushes the channel and fsyncs once, covering every record — and every
   commit — buffered by the time it runs; concurrent callers whose LSN
   the batch covered return without touching the disk. One fsync per
   *batch* of commits is the whole point (cf. the group-commit section of
   the Postgres recovery chapter); the histogram of commits-per-fsync is
   the measurable evidence. With [group_commit = false] every caller
   flushes and fsyncs itself — the per-commit-fsync baseline the bench
   compares against. *)
let sync log =
  match log.backend with
  | Mem -> ()
  | Disk d ->
    Mutex.lock log.m;
    let target = d.appended_lsn in
    Mutex.unlock log.m;
    let flush_once () =
      Mutex.lock log.m;
      flush d.chan;
      let flushed = d.appended_lsn in
      let commits = d.commits_pending in
      d.commits_pending <- 0;
      let fd = d.fd in
      Mutex.unlock log.m;
      fsync_quiet fd;
      (flushed, commits)
    in
    if not d.group_commit then begin
      let flushed, commits = flush_once () in
      Mutex.lock d.sync_m;
      d.durable_lsn <- max d.durable_lsn flushed;
      d.syncs <- d.syncs + 1;
      if commits > 0 then
        d.batch_hist.(bucket_of_batch commits) <-
          d.batch_hist.(bucket_of_batch commits) + 1;
      Mutex.unlock d.sync_m
    end
    else begin
      Mutex.lock d.sync_m;
      let rec wait_or_lead () =
        if d.durable_lsn >= target then Mutex.unlock d.sync_m
        else if d.flushing then begin
          Condition.wait d.sync_cv d.sync_m;
          wait_or_lead ()
        end
        else begin
          d.flushing <- true;
          Mutex.unlock d.sync_m;
          let flushed, commits = flush_once () in
          Mutex.lock d.sync_m;
          d.durable_lsn <- max d.durable_lsn flushed;
          d.flushing <- false;
          d.syncs <- d.syncs + 1;
          if commits > 0 then
            d.batch_hist.(bucket_of_batch commits) <-
              d.batch_hist.(bucket_of_batch commits) + 1;
          Condition.broadcast d.sync_cv;
          wait_or_lead ()
        end
      in
      wait_or_lead ()
    end

(* {2 Checkpoints and truncation}

   A checkpoint opens a fresh segment whose first record carries the
   store image and, for each still-active transaction, the before-images
   it would need undone (its undo journal). Once that record is durable,
   every older segment is history — its effects are all in the image —
   and is unlinked. The in-memory backend mirrors the truncation exactly:
   the records list restarts at the checkpoint. Recovery treats a log
   whose first intact record is a Checkpoint as starting from its
   image.

   [checkpoint_record] is the general form: any record that fully
   captures the replay base — the single-version [Checkpoint] or the
   multiversion [Vcheckpoint] — rides the same fresh-segment-plus-
   truncation discipline. *)
let checkpoint_record log r =
  Mutex.lock log.m;
  (match log.backend with
  | Mem ->
    log.records <- [ r ];
    log.count <- 1
  | Disk d ->
    (* make everything below the checkpoint durable, then start fresh *)
    flush d.chan;
    fsync_quiet d.fd;
    close_out d.chan;
    let retired = d.seg_index in
    d.seg_index <- d.seg_index + 1;
    let chan, fd = open_segment d.dir d.seg_index in
    d.chan <- chan;
    d.fd <- fd;
    d.seg_bytes <- 0;
    disk_write d r;
    flush d.chan;
    fsync_quiet d.fd;
    let flushed = d.appended_lsn in
    d.commits_pending <- 0;
    (* the checkpoint is durable: segments wholly below it are garbage *)
    for i = 0 to retired do
      let p = Filename.concat d.dir (segment_name i) in
      if Sys.file_exists p then begin
        (try Sys.remove p with Sys_error _ -> ());
        d.truncated <- d.truncated + 1
      end
    done;
    d.closed_bytes <- 0;
    d.segments <- 1;
    d.checkpoints <- d.checkpoints + 1;
    log.count <- 1;
    Mutex.unlock log.m;
    Mutex.lock d.sync_m;
    d.durable_lsn <- max d.durable_lsn flushed;
    Mutex.unlock d.sync_m;
    Mutex.lock log.m);
  Mutex.unlock log.m

let checkpoint log ~image ~active =
  checkpoint_record log (Checkpoint { image; active })

let close log =
  Mutex.lock log.m;
  (match log.backend with
  | Mem -> ()
  | Disk d ->
    flush d.chan;
    fsync_quiet d.fd;
    (try close_out d.chan with Sys_error _ -> ()));
  Mutex.unlock log.m

(* {2 Read-back}

   [records] for the disk backend decodes every live segment in index
   order. A trailing record cut short (length or body incomplete — a real
   torn tail) is dropped: it never became durable, which is exactly the
   torn-record rule the in-memory crash images encode explicitly. *)

let decode_segment acc path =
  let ic = open_in_bin path in
  let acc = ref acc in
  (try
     let hdr = Bytes.create 4 in
     let rec loop () =
       match really_input ic hdr 0 4 with
       | () ->
         let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
         if len < 0 || len > 1 lsl 28 then raise Truncated;
         let body = Bytes.create len in
         really_input ic body 0 len;
         acc := decode_body body :: !acc;
         loop ()
     in
     loop ()
   with End_of_file | Truncated -> ());
  close_in ic;
  !acc

let disk_segments d =
  Sys.readdir d.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".seg")
  |> List.sort compare
  |> List.map (Filename.concat d.dir)

let records log =
  Mutex.lock log.m;
  let rs =
    match log.backend with
    | Mem -> log.records
    | Disk d ->
      flush d.chan;
      List.fold_left decode_segment [] (disk_segments d)
  in
  Mutex.unlock log.m;
  List.rev rs

let torn_tail log =
  Mutex.lock log.m;
  let r =
    if log.torn then (match log.records with r :: _ -> Some r | [] -> None)
    else None
  in
  Mutex.unlock log.m;
  r

let intact log =
  match log.backend with
  | Mem ->
    Mutex.lock log.m;
    let rs =
      if log.torn then (match log.records with _ :: rest -> rest | [] -> [])
      else log.records
    in
    Mutex.unlock log.m;
    List.rev rs
  | Disk _ -> records log (* a live disk log is never torn *)

(* Live (post-truncation) record count; O(1), the monitor polls it. *)
let length log =
  Mutex.lock log.m;
  let n = log.count in
  Mutex.unlock log.m;
  n

(* Terminal-record accounting believes only intact records: a Commit,
   Vcommit or Abort torn off the tail never took effect. *)
let committed log =
  List.filter_map
    (function Commit t | Vcommit { t; _ } -> Some t | _ -> None)
    (intact log)

let aborted log =
  List.filter_map (function Abort t -> Some t | _ -> None) (intact log)

(* Transactions in flight at the crash: an intact Begin — or a carried
   entry in the leading checkpoint's active list — with no intact
   terminal record (Commit, Vcommit or Abort). A transaction whose
   terminal is the torn tail is in flight too, and so is one whose
   Vinstalls survived but whose commit stamp did not: versions without a
   stamp never became visible. The membership tables keep this linear in
   the log, which matters to crash-point enumeration (it calls [losers]
   once per prefix). *)
let losers log =
  let rs = intact log in
  let carried =
    match rs with
    | Checkpoint { active; _ } :: _ -> List.map fst active
    | Vcheckpoint { active; _ } :: _ -> active
    | _ -> []
  in
  let ended = Hashtbl.create 16 in
  List.iter
    (function
      | Commit t | Abort t | Vcommit { t; _ } -> Hashtbl.replace ended t ()
      | _ -> ())
    rs;
  List.filter (fun t -> not (Hashtbl.mem ended t)) carried
  @ List.filter_map
      (function Begin t when not (Hashtbl.mem ended t) -> Some t | _ -> None)
      rs

(* {2 Crash images} *)

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] xs

let mem_of records torn =
  {
    records;
    torn;
    m = Mutex.create ();
    count = List.length records;
    backend = Mem;
  }

let prefix log n =
  let rs = records log in
  let len = List.length rs in
  if n < 0 || n > len then
    invalid_arg (Fmt.str "Wal.prefix: %d not in [0, %d]" n len);
  mem_of (List.rev (take n rs)) false

let torn_prefix log n =
  let rs = records log in
  let len = List.length rs in
  if n < 1 || n > len then
    invalid_arg (Fmt.str "Wal.torn_prefix: %d not in [1, %d]" n len);
  mem_of (List.rev (take n rs)) true

(* Reopen a log directory after a (real or simulated) crash: decode what
   survived into an in-memory image. A trailing partial record was torn
   off by the crash and is dropped, per the WAL rule. *)
let load ~dir =
  let d = { (* only [dir] matters for reading *)
            dir; segment_bytes = 0; group_commit = false; seg_index = 0;
            chan = stdout; fd = Unix.stdout; seg_bytes = 0; closed_bytes = 0;
            segments = 0; scratch = Buffer.create 1;
            sync_m = Mutex.create (); sync_cv = Condition.create ();
            flushing = false; appended_lsn = 0; durable_lsn = 0;
            commits_pending = 0; syncs = 0;
            batch_hist = Array.make batch_buckets 0; checkpoints = 0;
            truncated = 0 }
  in
  let rs = List.fold_left decode_segment [] (disk_segments d) in
  mem_of rs false

(* {2 Telemetry} *)

type stats = {
  w_records : int;
  w_segments : int;
  w_disk_bytes : int;
  w_syncs : int;
  w_checkpoints : int;
  w_truncated_segments : int;
  w_batch_hist : (int * int) list;
      (* (batch-size bucket upper bound, fsyncs) — group-commit evidence *)
}

let stats log =
  Mutex.lock log.m;
  let s =
    match log.backend with
    | Mem ->
      {
        w_records = log.count;
        w_segments = 0;
        w_disk_bytes = 0;
        w_syncs = 0;
        w_checkpoints = 0;
        w_truncated_segments = 0;
        w_batch_hist = [];
      }
    | Disk d ->
      let hist = Array.copy d.batch_hist in
      {
        w_records = log.count;
        w_segments = d.segments;
        w_disk_bytes = d.closed_bytes + d.seg_bytes;
        w_syncs = d.syncs;
        w_checkpoints = d.checkpoints;
        w_truncated_segments = d.truncated;
        w_batch_hist =
          List.filteri
            (fun _ (_, n) -> n > 0)
            (List.init batch_buckets (fun i -> (1 lsl i, hist.(i))));
      }
  in
  Mutex.unlock log.m;
  s

let pp ppf log =
  Fmt.(list ~sep:sp pp_record) ppf (intact log);
  match torn_tail log with
  | None -> ()
  | Some r -> Fmt.pf ppf " ~torn~%a" pp_record r
