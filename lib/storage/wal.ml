(* Write-ahead log. The paper's second argument for P0 (§3) is that dirty
   writes break recovery: "you don't want to undo w1[x] by restoring its
   before-image, because that would wipe out w2's update". This log and the
   companion Recovery module make that argument executable.

   Torn tails. A crash can land mid-append: the newest record's header
   (its type and transaction id) survives but its payload did not — the
   torn record is visible to the log reader yet must not be trusted.
   [prefix] and [torn_prefix] build exactly these crash images, and the
   accessors split the log into the [intact] records (everything a
   recovery manager may believe) and the [torn_tail]. Because the log is
   written before the store (WAL discipline), a torn [Update] means the
   data write never happened; a torn [Commit]/[Abort] never took effect,
   so its transaction is still in flight and must be undone. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn

let pp_record ppf = function
  | Begin t -> Fmt.pf ppf "BEGIN(T%d)" t
  | Update { t; k; before; after } ->
    Fmt.pf ppf "UPDATE(T%d, %s, %a -> %a)" t k
      Fmt.(option ~none:(any "absent") int)
      before
      Fmt.(option ~none:(any "absent") int)
      after
  | Commit t -> Fmt.pf ppf "COMMIT(T%d)" t
  | Abort t -> Fmt.pf ppf "ABORT(T%d)" t

(* Appends are serialized by a private mutex: under striped execution,
   transactions updating different shards log concurrently, and the WAL
   is the one log they share. The critical section is a cons. [torn] is
   only ever set on crash images built by [prefix]/[torn_prefix]; a live
   log is never torn. *)
type t = {
  mutable records : record list; (* newest first *)
  mutable torn : bool;           (* the newest record is a torn tail *)
  m : Mutex.t;
}

let create () = { records = []; torn = false; m = Mutex.create () }

let append log r =
  Mutex.lock log.m;
  log.records <- r :: log.records;
  Mutex.unlock log.m

let records log =
  Mutex.lock log.m;
  let rs = log.records in
  Mutex.unlock log.m;
  List.rev rs

let torn_tail log =
  Mutex.lock log.m;
  let r = if log.torn then (match log.records with r :: _ -> Some r | [] -> None)
          else None in
  Mutex.unlock log.m;
  r

let intact log =
  Mutex.lock log.m;
  let rs = if log.torn then (match log.records with _ :: rest -> rest | [] -> [])
           else log.records in
  Mutex.unlock log.m;
  List.rev rs

let length log = List.length (records log)

(* Terminal-record accounting believes only intact records: a Commit or
   Abort torn off the tail never took effect. *)
let committed log =
  List.filter_map (function Commit t -> Some t | _ -> None) (intact log)

let aborted log =
  List.filter_map (function Abort t -> Some t | _ -> None) (intact log)

(* Transactions with an intact Begin but no intact terminal record:
   crashed in flight. A transaction whose Commit/Abort is the torn tail
   is in flight too — the terminal record did not survive the crash, so
   the transaction never (durably) ended. The membership tables keep this
   linear in the log, which matters to crash-point enumeration (it calls
   [losers] once per prefix). *)
let losers log =
  let rs = intact log in
  let ended = Hashtbl.create 16 in
  List.iter
    (function Commit t | Abort t -> Hashtbl.replace ended t () | _ -> ())
    rs;
  List.filter_map
    (function Begin t when not (Hashtbl.mem ended t) -> Some t | _ -> None)
    rs

(* {2 Crash images} *)

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] xs

let prefix log n =
  let rs = records log in
  let len = List.length rs in
  if n < 0 || n > len then
    invalid_arg (Fmt.str "Wal.prefix: %d not in [0, %d]" n len);
  { records = List.rev (take n rs); torn = false; m = Mutex.create () }

let torn_prefix log n =
  let rs = records log in
  let len = List.length rs in
  if n < 1 || n > len then
    invalid_arg (Fmt.str "Wal.torn_prefix: %d not in [1, %d]" n len);
  { records = List.rev (take n rs); torn = true; m = Mutex.create () }

let pp ppf log =
  Fmt.(list ~sep:sp pp_record) ppf (intact log);
  match torn_tail log with
  | None -> ()
  | Some r -> Fmt.pf ppf " ~torn~%a" pp_record r
