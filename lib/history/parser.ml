(* Parser for the paper's shorthand history notation, so that the paper's
   example histories can be transcribed verbatim:

     H1: r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1
     H3: r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1
     H1.SI: r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
     P4C: rc1[x]...w2[x]...w1[x]...c1

   Tokens are actions; whitespace and the paper's ellipses ("...") separate
   them, but actions may also abut ("...c2 r1[y=50]" vs "c2r1[y=50]" both
   parse). Item names are lowercase identifiers; trailing digits denote a
   version (x0, y1), except directly after an underscore, where they are
   part of the name (acct_007) — that keeps the runtime's histories
   round-trippable. Predicate names begin with an uppercase letter and may
   list their matched items as P:{x,y}. *)

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "at offset %d: %s" e.position e.message

exception Fail of error

let fail pos fmt = Fmt.kstr (fun message -> raise (Fail { position = pos; message })) fmt

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false
let is_lower = function 'a' .. 'z' | '_' -> true | _ -> false
let is_upper = function 'A' .. 'Z' -> true | _ -> false
let is_ident ch = is_lower ch || is_upper ch || is_digit ch

(* Skip whitespace and the ellipsis separators used throughout the paper. *)
let skip_separators c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ch when is_space ch -> advance c
    | Some '.' -> advance c
    | Some ',' -> advance c
    | _ -> continue := false
  done

let take_while c pred =
  let start = c.pos in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ch when pred ch -> advance c
    | _ -> continue := false
  done;
  String.sub c.input start (c.pos - start)

let parse_int c =
  let neg = peek c = Some '-' in
  if neg then advance c;
  let digits = take_while c is_digit in
  if digits = "" then fail c.pos "expected an integer"
  else
    let n = int_of_string digits in
    if neg then -n else n

let parse_txn c =
  let digits = take_while c is_digit in
  if digits = "" then fail c.pos "expected a transaction number"
  else int_of_string digits

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> fail c.pos "expected '%c' but found '%c'" ch got
  | None -> fail c.pos "expected '%c' but found end of input" ch

(* An item reference: lowercase name with optional trailing version digits
   and optional "=value" — e.g. "x", "x=50", "x0=50", "y1=-40". *)
let parse_item_ref c =
  let name = take_while c (fun ch -> is_lower ch) in
  if name = "" then fail c.pos "expected an item name";
  (* Digits right after an underscore belong to the name (the runtime's
     acct_007-style keys); only digits after a letter denote a version
     (the paper's x0, y1). *)
  let name, ver =
    if name.[String.length name - 1] = '_' then
      (name ^ take_while c is_digit, None)
    else
      let digits = take_while c is_digit in
      (name, if digits = "" then None else Some (int_of_string digits))
  in
  let value =
    match peek c with
    | Some '=' ->
      advance c;
      Some (parse_int c)
    | _ -> None
  in
  (name, ver, value)

let parse_word c = take_while c (fun ch -> is_lower ch)

(* Contents of a read's brackets: item reference, or predicate name with an
   optional ":{k1,k2}" list of matched items. *)
let parse_read_body c t ~cursor =
  match peek c with
  | Some ch when is_upper ch ->
    let pname = take_while c is_ident in
    let keys =
      match peek c with
      | Some ':' ->
        advance c;
        expect c '{';
        let rec items acc =
          let name = take_while c (fun ch2 -> is_lower ch2 || is_digit ch2) in
          if name = "" then fail c.pos "expected an item name in predicate key list";
          match peek c with
          | Some ',' ->
            advance c;
            items (name :: acc)
          | Some '}' ->
            advance c;
            List.rev (name :: acc)
          | _ -> fail c.pos "expected ',' or '}' in predicate key list"
        in
        items []
      | _ -> []
    in
    if cursor then fail c.pos "cursor reads apply to items, not predicates";
    Action.pred_read ~keys t pname
  | _ ->
    let name, ver, value = parse_item_ref c in
    Action.read ?ver ?value ~cursor t name

(* Contents of a write's brackets:
     "x", "x=10", "x1=10", "y in P", "insert y to P", "delete y from P",
     "insert y", "delete y". *)
let parse_write_body c t ~cursor =
  let start = c.pos in
  let word = parse_word c in
  let kind, name, ver, value =
    match word with
    | "insert" | "delete" ->
      skip_separators c;
      let name, ver, value = parse_item_ref c in
      ((if word = "insert" then Action.Insert else Action.Delete), name, ver, value)
    | "" -> fail c.pos "expected an item name or insert/delete"
    | _ ->
      (* [word] was the item name; re-parse from [start] for version/value. *)
      c.pos <- start;
      let name, ver, value = parse_item_ref c in
      (Action.Update, name, ver, value)
  in
  skip_separators c;
  let preds =
    (* Optional "in P" / "to P" / "from P" connective naming the predicate. *)
    let save = c.pos in
    let connective = parse_word c in
    match connective with
    | "in" | "to" | "from" -> (
      skip_separators c;
      match peek c with
      | Some ch when is_upper ch -> [ take_while c is_ident ]
      | _ -> fail c.pos "expected a predicate name after '%s'" connective)
    | _ ->
      c.pos <- save;
      []
  in
  Action.write ?ver ?value ~kind ~preds ~cursor t name

let parse_action c =
  match peek c with
  | Some 'c' ->
    advance c;
    Action.commit (parse_txn c)
  | Some 'a' ->
    advance c;
    Action.abort (parse_txn c)
  | Some ('r' | 'w') ->
    let is_read = peek c = Some 'r' in
    advance c;
    let cursor = peek c = Some 'c' in
    if cursor then advance c;
    let t = parse_txn c in
    expect c '[';
    let action =
      if is_read then parse_read_body c t ~cursor else parse_write_body c t ~cursor
    in
    expect c ']';
    action
  | Some ch -> fail c.pos "unexpected character '%c'" ch
  | None -> fail c.pos "unexpected end of input"

let parse input =
  let c = { input; pos = 0 } in
  let rec loop acc =
    skip_separators c;
    if c.pos >= String.length input then Ok (List.rev acc)
    else
      match parse_action c with
      | action -> loop (action :: acc)
      | exception Fail e -> Error e
  in
  loop []

let parse_exn input =
  match parse input with
  | Ok actions -> actions
  | Error e -> invalid_arg (Fmt.str "Parser.parse_exn: %a" pp_error e)
