(* Post-run correctness oracle: the paper's detectors and serializability
   tests applied to the history a parallel run recorded. *)

module P = Phenomena.Phenomenon
module Detect = Phenomena.Detect
module A = History.Action

let max_display_witnesses = 5

(* The anomaly interpretations — everything but the broad patterns
   P0-P3. A locking scheduler prevents the patterns themselves (Remark
   5's point); optimistic and multiversion schedulers admit the
   patterns while excluding the anomalies, which is the paper's central
   distinction, so only the anomalies dirty a serializable verdict. *)
let is_anomaly = function
  | P.P0 | P.P1 | P.P2 | P.P3 -> false
  | P.A1 | P.A2 | P.A3 | P.P4 | P.P4C | P.A5A | P.A5B -> true

type t = {
  actions : int;
  txns : int;
  committed : int;
  aborted : int;
  well_formed : (unit, string) result;
  multiversion : bool;
  serializable : bool;
  cycle : History.Action.txn list option;
  phenomena : (P.t * int) list;
  witnesses : Detect.witness list;
  window : int option;
}

let check_full ?(phenomena = P.all) h =
  let well_formed = History.well_formed h in
  let multiversion = History.Mv.is_mv h in
  let serializable, cycle =
    if multiversion then
      (History.Mv.is_one_copy_serializable h, History.Mv.mvsg_cycle h)
    else (History.Conflict.is_serializable h, History.Conflict.cycle h)
  in
  (* {!Detect.detect} applies the version-aware refinement itself on
     multiversion histories, so oracle and simulator share one detector
     library ({!Phenomena.Detect.refine_mv}). *)
  let hits =
    List.filter_map
      (fun p ->
        match Detect.detect p h with [] -> None | ws -> Some (p, ws))
      phenomena
  in
  {
    actions = List.length h;
    txns = List.length (History.txns h);
    committed = List.length (History.committed h);
    aborted = List.length (History.aborted h);
    well_formed;
    multiversion;
    serializable;
    cycle;
    phenomena = List.map (fun (p, ws) -> (p, List.length ws)) hits;
    witnesses =
      (* anomaly witnesses first: they are the ones worth reading *)
      (let anoms, pats = List.partition (fun (p, _) -> is_anomaly p) hits in
       let all = List.concat_map snd (anoms @ pats) in
       List.filteri (fun i _ -> i < max_display_witnesses) all);
    window = None;
  }

(* {2 Windowed checking}

   The detectors are polynomial in history size, so on long stress runs
   the post-run check dominates wall time. A windowed check slides a
   window of [n] transactions (in completion order, never-terminated
   ones last) with 50% overlap and runs the detectors on each projected
   subhistory, merging the hits — sound (witnesses project intact into
   some window) and near-linear.

   Serializability, however, is *never* windowed: a dependency cycle
   can span transactions that no window holds together, so the old
   per-window conjunction was a false-negative trap. The full-history
   verdict instead comes from an incremental-graph replay
   ({!Certifier.replay}) whose cost is itself near-linear — so the
   windowed oracle is now a sound detector *and* a sound prover; the
   [window] field only records that phenomenon counts are per-window
   lower bounds. *)

let completion_order h =
  let terminated =
    List.filter_map
      (function (A.Commit t | A.Abort t) -> Some t | _ -> None)
      h
  in
  terminated @ History.active h

let merge_verdicts full verdicts =
  let worst_wf =
    List.fold_left
      (fun acc v -> if acc = Ok () then v.well_formed else acc)
      (Ok ()) verdicts
  in
  (* The full, non-windowed serializability verdict: replay the whole
     history through the incremental dependency graph. Cycles crossing
     window boundaries are exactly what the per-window checks miss. *)
  let replay = Certifier.replay full in
  let serializable = replay.Certifier.serializable in
  let cycle = replay.Certifier.witness in
  (* Overlapping windows would double-count a witness pair; the merged
     count per phenomenon is the max over windows — a lower bound on the
     whole history's count. *)
  let phenomena =
    List.fold_left
      (fun acc v ->
        List.fold_left
          (fun acc (p, n) ->
            let cur = try List.assoc p acc with Not_found -> 0 in
            (p, max cur n) :: List.remove_assoc p acc)
          acc v.phenomena)
      [] verdicts
    |> List.sort compare
  in
  let witnesses =
    let anoms, pats =
      List.partition
        (fun (w : Detect.witness) -> is_anomaly w.phenomenon)
        (List.concat_map (fun v -> v.witnesses) verdicts)
    in
    List.filteri (fun i _ -> i < max_display_witnesses) (anoms @ pats)
  in
  {
    actions = List.length full;
    txns = List.length (History.txns full);
    committed = List.length (History.committed full);
    aborted = List.length (History.aborted full);
    well_formed = worst_wf;
    multiversion = List.exists (fun v -> v.multiversion) verdicts;
    serializable;
    cycle;
    phenomena;
    witnesses;
    window = None;
  }

let check ?phenomena ?window h =
  match window with
  | None -> check_full ?phenomena h
  | Some n ->
    let n = max 2 n in
    let order = completion_order h in
    if List.length order <= n then
      { (check_full ?phenomena h) with window = Some n }
    else begin
      let arr = Array.of_list order in
      let total = Array.length arr in
      let stride = max 1 (n / 2) in
      let rec starts s acc =
        if s + n >= total then List.rev ((total - n) :: acc)
        else starts (s + stride) (s :: acc)
      in
      let verdicts =
        List.map
          (fun s ->
            let tids = Array.to_list (Array.sub arr s n) in
            check_full ?phenomena (History.project tids h))
          (starts 0 [])
      in
      { (merge_verdicts h verdicts) with window = Some n }
    end

let anomalies t = List.filter (fun (p, _) -> is_anomaly p) t.phenomena
let patterns t = List.filter (fun (p, _) -> not (is_anomaly p)) t.phenomena
let clean t = t.well_formed = Ok () && t.serializable && anomalies t = []
let pattern_free t = clean t && t.phenomena = []

(* {2 The mixed-level verdict}

   Under a level mix there is no single right-hand side for the run:
   each witness is attributed to its victim role(s)
   ({!Phenomena.Detect.victims}) and judged against the victim's own
   declared level — a Table-4 [Not_possible] cell makes it a violation,
   anything else a permitted anomaly the victim signed up for. Witness
   attribution only covers the named two-transaction templates, so the
   mixed certifier replay rides along for the cycles no template names
   (three-way antidependency rings and longer): its [harmed] count and
   the template violations together decide [m_clean]. Victims that
   never committed are skipped — an aborted transaction's reads carry
   no guarantee — matching the certifier's committed-projection
   scope. *)

module Level = Isolation.Level

type mixed = {
  m_tagged : int;          (* transactions with a declared level *)
  m_matrix : ((Level.t * P.t) * int) list;
                           (* permitted anomaly x committed-victim level *)
  m_violations : ((Level.t * P.t) * int) list;
                           (* forbidden-for-victim attributions *)
  m_harmed : int;          (* certifier-replay harm on long cycles *)
  m_tolerated : int;       (* certifier-replay tolerated cycles *)
  m_clean : bool;
}

let check_mixed ?(phenomena = P.all) ~levels h =
  let committed = History.committed h in
  let level_of tid =
    Option.value ~default:Level.Serializable (List.assoc_opt tid levels)
  in
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let permitted = Hashtbl.create 16 and violated = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun (w : Detect.witness) ->
          List.iter
            (fun v ->
              if List.mem v committed then
                let l = level_of v in
                if Isolation.Spec.table4 l p = Isolation.Spec.Not_possible
                then bump violated (l, p)
                else bump permitted (l, p))
            (Detect.victims w))
        (Detect.detect p h))
    phenomena;
  let cells tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun ((l1, p1), _) ((l2, p2), _) ->
           match compare (Level.slug l1) (Level.slug l2) with
           | 0 -> compare (P.name p1) (P.name p2)
           | c -> c)
  in
  let cert = Certifier.replay ~criterion:Certifier.Mixed ~levels h in
  let m_violations = cells violated in
  {
    m_tagged = List.length levels;
    m_matrix = cells permitted;
    m_violations;
    m_harmed = cert.Certifier.harmed;
    m_tolerated = cert.Certifier.tolerated;
    m_clean =
      History.well_formed h = Ok ()
      && m_violations = []
      && cert.Certifier.mixed_ok;
  }

let pp_mixed ppf m =
  let fmt_cells cs =
    String.concat ", "
      (List.map
         (fun ((l, p), n) ->
           Fmt.str "%s@%s x%d" (P.name p) (Level.slug l) n)
         cs)
  in
  Fmt.pf ppf
    "@[<v>mixed oracle: %d tagged txns, %d cycle%s tolerated, %d harmed; %s@,\
     permitted: %s@,violations: %s@]"
    m.m_tagged m.m_tolerated
    (if m.m_tolerated = 1 then "" else "s")
    m.m_harmed
    (if m.m_clean then "every victim held its own level" else "MIXED VIOLATION")
    (match m.m_matrix with [] -> "none" | cs -> fmt_cells cs)
    (match m.m_violations with [] -> "none" | cs -> fmt_cells cs)

let mixed_to_json m =
  let cells cs =
    String.concat ","
      (List.map
         (fun ((l, p), n) ->
           Printf.sprintf {|{"level":"%s","anomaly":"%s","count":%d}|}
             (Level.slug l) (P.name p) n)
         cs)
  in
  Printf.sprintf
    {|{"tagged":%d,"tolerated":%d,"harmed":%d,"matrix":[%s],"violations":[%s],"mixed_clean":%b}|}
    m.m_tagged m.m_tolerated m.m_harmed
    (cells m.m_matrix)
    (cells m.m_violations)
    m.m_clean

let pp ppf t =
  Fmt.pf ppf "@[<v>oracle: %d actions, %d txns (%d committed, %d aborted)@,"
    t.actions t.txns t.committed t.aborted;
  (match t.window with
  | Some n ->
    Fmt.pf ppf
      "windowed: %d-txn sliding windows for the detectors; serializability \
       checked on the full history (incremental replay)@,"
      n
  | None -> ());
  (match t.well_formed with
  | Ok () -> Fmt.pf ppf "well-formed: yes@,"
  | Error m -> Fmt.pf ppf "well-formed: NO (%s)@," m);
  Fmt.pf ppf "%s: %b@,"
    (if t.multiversion then "one-copy serializable" else "conflict-serializable")
    t.serializable;
  (match t.cycle with
  | Some cycle ->
    Fmt.pf ppf "dependency cycle: %s@,"
      (String.concat " -> " (List.map (fun x -> "T" ^ string_of_int x) cycle))
  | None -> ());
  let fmt_ps ps =
    String.concat ", "
      (List.map (fun (p, n) -> Fmt.str "%s x%d" (P.name p) n) ps)
  in
  (match patterns t with
  | [] -> ()
  | ps -> Fmt.pf ppf "patterns (templates without the anomaly): %s@," (fmt_ps ps));
  (match anomalies t with
  | [] -> Fmt.pf ppf "anomalies: none"
  | ps ->
    Fmt.pf ppf "anomalies: %s" (fmt_ps ps);
    List.iter (fun w -> Fmt.pf ppf "@,  %a" Detect.pp_witness w) t.witnesses);
  Fmt.pf ppf "@]"

let to_json t =
  let obj ps =
    String.concat ","
      (List.map (fun (p, n) -> Printf.sprintf "%S:%d" (P.name p) n) ps)
  in
  let windowed =
    match t.window with
    | Some n -> Printf.sprintf "\"windowed\":%d," n
    | None -> ""
  in
  Printf.sprintf
    "{%s\"actions\":%d,\"txns\":%d,\"committed\":%d,\"aborted\":%d,\
     \"well_formed\":%b,\"multiversion\":%b,\"serializable\":%b,\
     \"patterns\":{%s},\"anomalies\":{%s},\"clean\":%b,\"pattern_free\":%b}"
    windowed t.actions t.txns t.committed t.aborted
    (t.well_formed = Ok ())
    t.multiversion t.serializable
    (obj (patterns t))
    (obj (anomalies t))
    (clean t) (pattern_free t)
