(** Online serializability certification.

    A certifier ingests the recorded history one action at a time —
    through the engine trace hook during a live run, or via {!replay}
    offline — and maintains a reduced dependency graph on the
    incremental topological order of {!Graph.Incremental}: wr / ww / rw
    edges whose transitive closure equals the offline
    {!History.Conflict.graph} (single-version families) or
    {!History.Mv.mvsg} (multiversion family). The closing edge of a
    dependency cycle is rejected and reported the moment it is offered.

    In [Enforce] mode the transaction whose action closed the cycle is
    doomed on the spot; the worker pool polls {!doomed} and aborts it
    before its next operation, so anomalies are certified away rather
    than observed. In [Observe] mode cycles are only recorded.
    {!finalize} turns either run into a full, non-windowed verdict on
    the committed projection by purging unfinished transactions and
    replaying the rejected edges whose endpoints committed.

    The correctness criterion is selectable. [Serializability] (the
    default) is the single-level behaviour: every cycle is a violation,
    any member may be doomed. [Mixed] makes the level a per-transaction
    property ({!note_level}): a rejected cycle is classified into the
    Table-4 phenomena it could exhibit, and a member is {e harmed} only
    when every candidate is forbidden at its own declared level — an SI
    transaction tolerates write skew (A5B), an RC transaction tolerates
    non-repeatable reads (P2/A5A), a SERIALIZABLE transaction tolerates
    nothing. A cycle harming nobody is tolerated outright. A harmful
    cycle dooms a harmed member when one is still active; when every
    harmed member has already committed (the cycle closed behind its
    back), the youngest active cycle member is doomed in its stead — a
    defensive abort, as SSI aborts a benign pivot — so the committed
    victim keeps the protection its level promises. Edges are inserted
    identically under both criteria, so a strong transaction is still
    protected by cycles passing through weak ones; only the doom
    decision is victim-relative. *)

type mode = Observe | Enforce
type family = [ `Locking | `Mv | `Timestamp ]

type criterion = Serializability | Mixed
(** What {!finalize} certifies: one global serializability verdict, or
    the per-victim mixed-level criterion. *)

type violation = {
  cycle : int list;      (** the witness: [n1 -> ... -> nk -> n1] *)
  dep : string;          (** the closing edge's kind: "wr", "ww" or "rw" *)
  src : int;
  dst : int;
  doomed : int option;   (** the transaction doomed for it, if enforcing *)
  victim_level : string option;
      (** the protected party's declared level slug: the harmed member
          the doom defends (which may not be the doomed transaction —
          see the defensive abort above), else the doomed member's own
          ([Mixed] only) *)
  classes : string list;
      (** candidate phenomena of the cycle, e.g. ["P2"; "A5A"]
          ([Mixed] only) *)
}

type summary = {
  mode : mode;
  criterion : criterion;
  nodes : int;           (** dependency-graph nodes when finalize began *)
  edges : int;           (** dependency-graph edges when finalize began *)
  edges_wr : int;        (** distinct write-read edges inserted *)
  edges_ww : int;
  edges_rw : int;
  cycles : int;          (** closing edges rejected during the run *)
  dooms : int;           (** transactions doomed (Enforce) *)
  misses : int;          (** cycles with no active member left to doom *)
  tolerated : int;       (** cycles harming no member ([Mixed]) *)
  harmed : int;
      (** finalize-replay attributions whose every candidate is
          forbidden at the committed member's level ([Mixed]) *)
  prune_passes : int;    (** era-pruning passes run (see {!create}) *)
  pruned_nodes : int;    (** committed nodes retired from the graph *)
  pruned_eras : int;     (** settled era-stack entries trimmed *)
  serializable : bool;   (** the committed projection's final verdict *)
  mixed_ok : bool;
      (** the mixed-criterion verdict: no committed member harmed.
          Equals [serializable] under [Serializability]. A mixed run
          can be [mixed_ok] yet not [serializable] — tolerated cycles
          among weak transactions are the point. *)
  matrix : ((Isolation.Level.t * Phenomena.Phenomenon.t) * int) list;
      (** permitted-anomaly attribution on the committed projection:
          how many finalize-replay cycles each level's victims were
          allowed to shrug off, per candidate phenomenon ([Mixed];
          SERIALIZABLE victims can have no cells by construction) *)
  witness : int list option;
  violations : violation list;  (** at most 64 retained, in order *)
}

type t

val create :
  ?on_edge:(src:int -> dst:int -> dep:string -> unit) ->
  ?on_cycle:(violation -> unit) ->
  ?batch:bool ->
  ?prune_every:int ->
  ?criterion:criterion ->
  mode:mode ->
  family:family ->
  unit ->
  t
(** [on_edge] fires for every edge actually inserted, [on_cycle] for
    every rejected closing edge — both inside the certifier's critical
    section, so keep them cheap (the pool uses them to emit
    [Dep_edge] / [Dep_cycle] trace events).

    With [~batch:true] (default false), {!observe} only appends the
    action to a small buffer — shrinking the caller's critical section
    (the engine trace lock) to a list cons — and the dependency-graph
    work happens on the next {!flush}, {!doomed} poll or {!finalize}.
    Buffer order equals history order because the engine serializes its
    trace hook, so verdicts are unchanged; only the locus of the work
    moves.

    [prune_every] > 0 (default 0, off) bounds memory for long
    single-version runs: every that many commits, settled era-stack
    bottoms are trimmed, committed predicate readers/writers are folded
    into per-predicate virtual nodes (an exact biclique compression),
    and committed graph sources no structure references any more are
    retired. The verdict is unchanged — a retired node can never gain
    another in-edge, so no future cycle can pass through it. The
    multiversion family runs the same retirement cadence, but its
    version-order and reader references only go away when the engine's
    vacuum declares versions buried — see {!mv_trim}. *)

val note_level : t -> tid:int -> level:Isolation.Level.t -> unit
(** Declare a transaction's isolation level (call at BEGIN, before its
    first action reaches {!observe}). Only consulted under the [Mixed]
    criterion; an undeclared transaction defaults to SERIALIZABLE,
    which forbids every phenomenon — the conservative reading. *)

val observe : t -> int -> History.Action.t -> unit
(** Feed one action, in history order; the [int] is its position
    (matching the {!Core.Engine.set_trace_hook} signature). Safe to call
    concurrently with {!doomed}. *)

val flush : t -> unit
(** Drain buffered actions into the graph ([~batch:true] only; a no-op
    otherwise). {!doomed} and {!finalize} flush implicitly, so calling
    this is an optimisation, not a correctness requirement. *)

val mv_trim : t -> buried:(string * int) list -> unit
(** Retire multiversion version-order entries: [buried] is the exact
    (key, writer) list a vacuum pruned at the oldest-active-snapshot
    horizon (the {!Core.Engine.set_prune_hook} payload — the pool wires
    it). Removes each writer from the key's version order and drops its
    per-version reader table; the writers themselves are then collected
    by the [prune_every] retirement cadence. Sound because no active or
    future snapshot can read a buried version, and every rw edge its
    past readers needed was offered at observation time. *)

val doomed : t -> int -> bool
(** Has the transaction been doomed for closing a cycle? Polled by
    workers before each operation. *)

type stats = {
  s_nodes : int;          (** dependency-graph nodes right now *)
  s_edges : int;
  s_queue : int;          (** batched actions awaiting graph work *)
  s_pending : int;        (** rejected closing edges held for finalize *)
  s_edges_wr : int;
  s_edges_ww : int;
  s_edges_rw : int;
  s_cycles : int;
  s_dooms : int;
  s_misses : int;         (** cycles with no active member left to doom *)
  s_tolerated : int;      (** cycles harming no member ([Mixed]) *)
  s_prune_passes : int;   (** era-pruning passes run so far *)
  s_pruned_nodes : int;   (** committed nodes retired from the graph *)
  s_pruned_eras : int;
      (** settled era-stack entries trimmed (single-version families) or
          buried versions dropped by {!mv_trim} (multiversion) *)
}

val stats : t -> stats
(** A live, non-destructive progress reading: unlike {!doomed} and
    {!finalize} it does not drain the batch buffer (the queue depth is
    itself the gauge), so scraping a running certifier never moves graph
    work onto the scraper. Safe from any thread. *)

val finalize : t -> summary
(** The final verdict; call once the run is over (every transaction
    terminated or permanently idle). *)

val replay :
  ?mode:mode ->
  ?family:family ->
  ?criterion:criterion ->
  ?levels:(int * Isolation.Level.t) list ->
  History.t ->
  summary
(** Run a fresh certifier over a complete history. [family] defaults to
    [`Mv] when the history is version-annotated ({!History.Mv.is_mv}),
    else [`Locking] — the same dispatch the offline oracle uses, so
    [(replay h).serializable] agrees with
    {!History.Conflict.is_serializable} / {!History.Mv.is_one_copy_serializable}
    on the committed projection. [levels] tags transactions for the
    [Mixed] criterion (untagged default to SERIALIZABLE). *)

val pp_violation : violation Fmt.t
val pp_summary : summary Fmt.t

val to_json : summary -> string
(** One JSON object: mode, per-kind [dep_edges] counts, cycle/doom/miss
    counters, the verdict, the witness and the retained violations. *)
