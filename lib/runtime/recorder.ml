(* Attempt journal for the worker pool: striped append-only buffers (one
   stripe per worker, so appends are contention-free) ordered globally by
   an atomic sequence number.

   Out-of-core runs spill: when a stripe's live buffer reaches the spill
   threshold it is appended — sorted, marshalled — to a per-stripe file,
   so only the live tails stay resident no matter how many attempts the
   run makes. [iter_entries] streams the merged journal back (one entry
   per stripe in memory at a time); [entries] still materializes the
   list for the small-run callers. *)

type outcome = Committed | Aborted of Core.Engine.abort_reason

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%a)" Core.Engine.pp_abort_reason r

type entry = {
  seq : int;
  job : int;
  name : string;
  level : Isolation.Level.t;
  tid : History.Action.txn;
  attempt : int;
  worker : int;
  start_ns : int;
  finish_ns : int;
  outcome : outcome;
}

type spill = {
  dir : string;
  threshold : int;
  chans : out_channel option array; (* per stripe, opened on first batch *)
  mutable spilled : int;            (* entries written out, all stripes *)
}

type t = {
  stripes : Stripes.t;
  buffers : entry list ref array; (* newest first, one per stripe *)
  counts : int array;             (* live entries per stripe *)
  next_seq : int Atomic.t;
  spill : spill option;
}

let spill_file dir i = Filename.concat dir (Printf.sprintf "journal-%02d.bin" i)

let create ?(stripes = 16) ?spill_dir ?(spill_threshold = 4096) () =
  let n = max 1 stripes in
  let spill =
    match spill_dir with
    | None -> None
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      Some
        {
          dir;
          threshold = max 64 spill_threshold;
          chans = Array.make n None;
          spilled = 0;
        }
  in
  {
    stripes = Stripes.create n;
    buffers = Array.init n (fun _ -> ref []);
    counts = Array.make n 0;
    next_seq = Atomic.make 0;
    spill;
  }

(* Under the stripe's lock: marshal the full buffer out, oldest first.
   Within one stripe sequence numbers are monotone (each worker draws its
   seq before appending, in program order), so the file stays sorted and
   [iter_entries] can stream-merge without re-sorting. *)
let spill_stripe t sp i =
  let chan =
    match sp.chans.(i) with
    | Some c -> c
    | None ->
      let c =
        open_out_gen
          [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
          0o644 (spill_file sp.dir i)
      in
      sp.chans.(i) <- Some c;
      c
  in
  let batch =
    List.sort (fun a b -> compare a.seq b.seq) !(t.buffers.(i))
  in
  List.iter (fun e -> Marshal.to_channel chan (e : entry) []) batch;
  sp.spilled <- sp.spilled + t.counts.(i);
  t.buffers.(i) := [];
  t.counts.(i) <- 0

let record t ~job ~name ~level ~tid ~attempt ~worker ~start_ns ~finish_ns
    outcome =
  let seq = Atomic.fetch_and_add t.next_seq 1 in
  let e =
    { seq; job; name; level; tid; attempt; worker; start_ns; finish_ns; outcome }
  in
  let i = worker mod Array.length t.buffers in
  Stripes.with_index t.stripes i (fun () ->
      t.buffers.(i) := e :: !(t.buffers.(i));
      t.counts.(i) <- t.counts.(i) + 1;
      match t.spill with
      | Some sp when t.counts.(i) >= sp.threshold -> spill_stripe t sp i
      | _ -> ())

let spilled t = match t.spill with Some sp -> sp.spilled | None -> 0

(* One sorted stream per stripe: the spilled file first (it holds the
   stripe's older entries), then the live tail. Call after workers
   joined — readers do not take stripe locks. *)
let stripe_stream t i =
  let live = ref (List.rev !(t.buffers.(i))) in
  let chan =
    match t.spill with
    | Some sp when Sys.file_exists (spill_file sp.dir i) ->
      (match sp.chans.(i) with Some c -> flush c | None -> ());
      Some (open_in_bin (spill_file sp.dir i))
    | _ -> None
  in
  let chan = ref chan in
  let next () =
    match !chan with
    | Some ic -> (
      match (Marshal.from_channel ic : entry) with
      | e -> Some e
      | exception End_of_file ->
        close_in ic;
        chan := None;
        (match !live with
        | e :: rest ->
          live := rest;
          Some e
        | [] -> None))
    | None -> (
      match !live with
      | e :: rest ->
        live := rest;
        Some e
      | [] -> None)
  in
  next

let iter_entries t f =
  let n = Array.length t.buffers in
  let streams = Array.init n (stripe_stream t) in
  let heads = Array.init n (fun i -> streams.(i) ()) in
  let rec go () =
    let best = ref (-1) and best_seq = ref max_int in
    Array.iteri
      (fun i -> function
        | Some e when e.seq < !best_seq ->
          best := i;
          best_seq := e.seq
        | _ -> ())
      heads;
    if !best >= 0 then begin
      (match heads.(!best) with Some e -> f e | None -> ());
      heads.(!best) <- streams.(!best) ();
      go ()
    end
  in
  go ()

let entries t =
  match t.spill with
  | None ->
    Array.to_list t.buffers
    |> List.concat_map (fun b -> !b)
    |> List.sort (fun a b -> compare a.seq b.seq)
  | Some _ ->
    let acc = ref [] in
    iter_entries t (fun e -> acc := e :: !acc);
    List.rev !acc

let committed t = List.filter (fun e -> e.outcome = Committed) (entries t)
