(* Attempt journal for the worker pool: striped append-only buffers (one
   stripe per worker, so appends are contention-free) ordered globally by
   an atomic sequence number. *)

type outcome = Committed | Aborted of Core.Engine.abort_reason

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%a)" Core.Engine.pp_abort_reason r

type entry = {
  seq : int;
  job : int;
  name : string;
  level : Isolation.Level.t;
  tid : History.Action.txn;
  attempt : int;
  worker : int;
  start_ns : int;
  finish_ns : int;
  outcome : outcome;
}

type t = {
  stripes : Stripes.t;
  buffers : entry list ref array; (* newest first, one per stripe *)
  next_seq : int Atomic.t;
}

let create ?(stripes = 16) () =
  let n = max 1 stripes in
  {
    stripes = Stripes.create n;
    buffers = Array.init n (fun _ -> ref []);
    next_seq = Atomic.make 0;
  }

let record t ~job ~name ~level ~tid ~attempt ~worker ~start_ns ~finish_ns
    outcome =
  let seq = Atomic.fetch_and_add t.next_seq 1 in
  let e =
    { seq; job; name; level; tid; attempt; worker; start_ns; finish_ns; outcome }
  in
  let i = worker mod Array.length t.buffers in
  Stripes.with_index t.stripes i (fun () ->
      t.buffers.(i) := e :: !(t.buffers.(i)))

let entries t =
  Array.to_list t.buffers
  |> List.concat_map (fun b -> !b)
  |> List.sort (fun a b -> compare a.seq b.seq)

let committed t = List.filter (fun e -> e.outcome = Committed) (entries t)
