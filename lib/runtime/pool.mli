(** The multicore transaction-processing runtime: a Domain-based worker
    pool that drives one {!Core.Engine} under real concurrency.

    N workers pull jobs (a transaction program plus its isolation level)
    from a shared lock-free queue and execute them against a single
    engine instance. Mutual exclusion is *striped*: the engine's keys
    hash onto [stripes] key stripes (the same {!Storage.Shard} map the
    sharded store and lock table use), with one extra stripe — ordered
    last — dedicated to predicate locks. Before each engine step the
    worker asks the engine for the operation's footprint
    ({!Core.Engine.footprint}) and takes exactly the stripes it names,
    in ascending index order, so steps on keys in different shards run
    concurrently while scans, commits and aborts take every stripe.
    Conflicting steps always share a stripe, which is what keeps the
    recorded history conflict-faithful (see {!field:result.history}).
    [coarse = true] collapses the set to a single latch through the same
    code path; the single-threaded multiversion and timestamp engines
    always run that way.

    Blocked transactions sleep *outside* their stripes with capped
    exponential backoff, so lock waits in the engine never idle the
    other workers. The waits-for graph is a {!Graph.Incremental}: a
    blocked worker publishes its edges under the step's stripes, and the
    insertion that would close a cycle is rejected with its witness on
    the spot — deadlock detection costs nothing while the graph stays
    acyclic. The reporting worker confirms the witness under every
    stripe and aborts the youngest member, whose job restarts under a
    fresh transaction id. Aborted attempts (deadlock victim,
    First-Committer-Wins, serialization failure, timestamp too-late,
    certifier doom) are retried up to an attempt budget.

    With [certify = true] the run is additionally certified online: the
    engine trace feeds a {!Certifier} as each action is recorded, and a
    transaction whose action closes a dependency cycle is doomed and
    aborted before it can commit ([Certifier_abort]), so the committed
    projection stays serializable at any isolation level.

    The run's engine trace, attempt journal, metrics, the {!Oracle.t}
    verdict over the recorded history — and, when certifying, the
    certifier's own online verdict — come back in {!result}. *)

module Action := History.Action
module Level := Isolation.Level

type job = {
  name : string;
  program : Core.Program.t;
  level : Level.t;
      (** execution level — must belong to the engine family *)
  declared : Level.t;
      (** the level the client asked for. Under the [Mixed] criterion
          the certifier and oracle judge the transaction against this;
          metrics and the journal attribute to it. Defaults to
          {!field:level}. *)
  read_only : bool;
}

val job :
  ?name:string ->
  ?read_only:bool ->
  ?declared:Level.t ->
  level:Level.t ->
  Core.Program.t ->
  job
(** [declared] defaults to [level], so single-level runs are unchanged.
    A mixed run executing on one engine family passes the client's
    requested level as [declared] and its in-family strengthening
    ({!Isolation.Lattice.strengthen}) as [level]. *)

type config = {
  workers : int;
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  family : [ `Locking | `Mv | `Timestamp ] option;
      (** engine family; [None] infers it from the job levels *)
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  stripes : int;
      (** key stripes for the striped execution path (locking engines
          only; plus one implicit predicate stripe). Default 16. *)
  coarse : bool;
      (** force the old coarse-latch behavior: one stripe, every
          footprint treated as All. The comparison baseline for the
          striped path. *)
  max_attempts : int;  (** attempt budget per job, >= 1 *)
  max_op_retries : int;
      (** blocked retries of one operation before the worker aborts its
          own transaction and restarts the job (starvation safety
          valve) *)
  think_us : float;
      (** mean think time slept (holding no stripes) between a
          transaction's operations. 0 measures raw engine throughput, but
          then transactions are so short they rarely overlap; a realistic
          think time is what makes the stress contend. *)
  backoff : Backoff.config;  (** blocked-operation waits *)
  retry_backoff : Backoff.config;
      (** transaction restarts after a system abort. Resets per job and
          escalates across attempts; the default window is wider than
          {!field:backoff}'s, because a restart that comes back too soon
          meets the same contenders and deadlocks again. *)
  oracle_phenomena : Phenomena.Phenomenon.t list;
      (** detectors the post-run oracle applies *)
  oracle_window : int option;
      (** [Some n] runs the post-run oracle over sliding [n]-transaction
          windows instead of the whole history (see {!Oracle.check}):
          anomaly reports stay sound, whole-run serializability becomes
          "no cycle within a window". For long stress runs where the
          polynomial full check dominates wall time. *)
  seed : int;  (** seeds the per-worker backoff jitter *)
  trace : Trace.Sink.t option;
      (** flight recorder for the structured event trace. [None] (the
          default) costs one branch per instrumentation point; [Some]
          records the full transaction lifecycle — attempts, engine
          steps with their history-position ranges, lock traffic,
          stripe contention, backoff sleeps, deadlock victims — into
          per-worker ring buffers that overwrite their oldest events
          rather than ever blocking a worker. *)
  fault : Fault.Plan.t option;
      (** deterministic seeded fault plan, consulted before every step
          (stall / spurious failure / forced victim) and at every commit
          (torn WAL tail, locking engines). [None] (the default) costs
          one branch per step. Injected aborts drain through the normal
          retry machinery. *)
  deadline_us : float option;
      (** per-attempt wall-clock budget: an attempt past it aborts itself
          gracefully ([Deadline_exceeded]) and the job retries with a
          fresh window. Checked before each step, so a blocked or stalled
          attempt notices on its next poll. *)
  watchdog_us : float option;
      (** stuck-worker threshold: [Some t] spawns a watchdog domain that
          reports (metrics + trace event) any worker whose last step
          entry is more than [t] microseconds old. Observation only — no
          recovery action. *)
  certify : bool;
      (** online serializability certification (default false): feed the
          recorded history to a {!Certifier} in [Enforce] mode and abort
          any transaction whose action closes a dependency cycle before
          its next operation. Adds [Dep_edge] / [Dep_cycle] trace events
          when tracing, [certifier_aborts] to the metrics, and the
          online {!Certifier.summary} to the result. *)
  criterion : Certifier.criterion;
      (** what certification enforces (default [Serializability], the
          single-level behaviour — verdicts byte-identical to before).
          [Mixed] judges each rejected cycle against the declared level
          of its members ({!field:job.declared}): a member is doomed
          only when the cycle's phenomenon candidates are all forbidden
          at its own level, and the result additionally carries the
          post-run {!Oracle.mixed} verdict. *)
  levels : Level.t list;
      (** the declared level mix of the whole run, for engine-family
          inference in generator mode ([]: infer from the jobs in
          hand). A cross-family mix is rejected up front with an error
          naming the offending levels, instead of crashing mid-stream
          on the first cross-family draw. *)
  certify_batch : bool;
      (** batch certifier edge offers (default true): the trace hook only
          buffers each action, shrinking the engine's recorder critical
          section to a list cons, and the dependency-graph work happens
          at the workers' next {!Certifier.doomed} poll — i.e. once per
          engine step — instead of inside the trace lock. Verdicts are
          identical; [false] restores the unbatched feed (the bench's
          comparison baseline). *)
  prune_every : int;
      (** certifier era-pruning cadence (default 4096, 0 = off): every
          that many commits the certifier trims settled era-stack
          bottoms, folds committed predicate readers/writers into
          virtual nodes and retires unreferenced committed sources, so
          certified out-of-core runs keep a bounded dependency graph.
          Verdict-preserving ({!Certifier.create}). *)
  wal_dir : string option;
      (** directory for the locking engine's segmented on-disk WAL
          (created if missing). [None] (the default) keeps the log in
          memory, exactly as before. *)
  wal_segment_bytes : int option;
      (** WAL segment rotation threshold (default 4 MiB). *)
  wal_group_commit : bool;
      (** [true] (the default) batches commit fsyncs: the committing
          worker parks at {!Core.Engine.wal_sync} and one leader fsyncs
          for everyone queued behind it. [false] fsyncs once per commit
          — the durability baseline the group-commit speedup is measured
          against. On-disk logs only. *)
  checkpoint_every : int;
      (** commits between WAL checkpoints (default 0 = never): each
          checkpoint logs the committed store image plus the active
          transactions' undo journals and truncates everything older —
          on disk that unlinks wholly-retired segments, in memory it
          collapses the record list — so the log stays bounded. *)
  keep_history : bool;
      (** [true] (the default) keeps the full engine trace and runs the
          post-run oracle over it. [false] is the out-of-core mode: the
          engine appends nothing to its in-memory trace (the WAL and the
          certifier feed still see every action), {!field:result.history}
          comes back empty, {!field:result.oracle} is [None] and
          {!field:result.journal} is not materialized — the online
          certifier is the serializability verdict. *)
  spill_dir : string option;
      (** directory for the attempt recorder's journal spill files
          (created if missing): stripes flush to disk past a threshold
          and only live tails stay resident ({!Recorder.create}). *)
  stop : bool Atomic.t option;
      (** drain flag: when the atomic flips to [true], workers finish the
          job in hand (retries included), take no new jobs, and the run
          returns normally with every tail event and journal entry
          intact. Wire it to SIGINT for graceful shutdown. [None] (the
          default) never drains early. *)
}

val config :
  ?workers:int ->
  ?initial:(Action.key * Action.value) list ->
  ?predicates:Storage.Predicate.t list ->
  ?family:[ `Locking | `Mv | `Timestamp ] ->
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?stripes:int ->
  ?coarse:bool ->
  ?max_attempts:int ->
  ?max_op_retries:int ->
  ?think_us:float ->
  ?backoff:Backoff.config ->
  ?retry_backoff:Backoff.config ->
  ?oracle_phenomena:Phenomena.Phenomenon.t list ->
  ?oracle_window:int ->
  ?seed:int ->
  ?trace:Trace.Sink.t ->
  ?fault:Fault.Plan.t ->
  ?deadline_us:float ->
  ?watchdog_us:float ->
  ?certify:bool ->
  ?criterion:Certifier.criterion ->
  ?levels:Level.t list ->
  ?certify_batch:bool ->
  ?prune_every:int ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?keep_history:bool ->
  ?spill_dir:string ->
  ?stop:bool Atomic.t ->
  unit ->
  config

(** {2 Live observation}

    A racy-tolerant reading of a run in flight: metric sums are
    per-cell atomic and monotone ({!Metrics.snapshot}'s live contract),
    certifier gauges come from {!Certifier.stats} without draining its
    batch queue, lock-table counters are atomics, WAL and history
    lengths from their synchronized accessors. Sampling never stops a
    worker. *)
type live = {
  at : float;  (** unix time the reading was taken *)
  metrics : Metrics.snapshot;
  certifier : Certifier.stats option;
  lock_stats : Locking.Lock_table.stats option;
  lock_stripes : int;   (** key stripes backing the lock table / store *)
  wal_entries : int;    (** live records in the locking engine's log *)
  wal_stats : Storage.Wal.stats option;
      (** segment / sync / checkpoint / batch-histogram gauges of the
          locking engine's log ({!Storage.Wal.stats}) *)
  history_len : int;    (** actions in the recorded history *)
}

type result = {
  history : History.t;
      (** the engine trace of the whole run. Conflicting actions always
          executed under a common stripe, so the trace orders every
          conflicting pair exactly as it happened — a conflict-faithful
          linearization (and under [coarse], where every step held the
          single latch, a true one). *)
  final : (Action.key * Action.value) list;
  metrics : Metrics.snapshot;
  journal : Recorder.entry list;
      (** the merged attempt journal; empty when [config.keep_history]
          is [false] (out-of-core runs leave it spilled on disk) *)
  oracle : Oracle.t option;
      (** the post-run oracle's verdict over {!field:history}; [None]
          when [config.keep_history] is [false] — no trace was kept, and
          the online certifier supplies the verdict instead *)
  mixed : Oracle.mixed option;
      (** the per-victim mixed-level verdict ([Some] iff
          [config.criterion] is [Mixed] and the history was kept): each
          detector witness judged against its victim's declared level,
          plus the anomaly × victim-level matrix *)
  certifier : Certifier.summary option;
      (** the online certifier's finalized verdict and edge/cycle
          accounting ([Some] iff [config.certify]) *)
  lock_stats : Locking.Lock_table.stats option;  (** locking engines only *)
  events : Trace.Event.t list;
      (** the merged flight-recorder timeline, sorted by timestamp
          (empty when [config.trace] is [None]) *)
  events_dropped : int;
      (** trace events lost to ring overwrites or unattached domains *)
  wal : Storage.Wal.t option;
      (** the locking engine's write-ahead log, for post-run crash-point
          enumeration ({!Fault.Crash.enumerate}); [None] for the other
          families *)
}

exception Stuck of string
(** Raised only on runtime bugs: a transaction left neither committed nor
    aborted after its program ran to completion. *)

val default_stripes : int
(** Key stripes used when [config] is not told otherwise (16). *)

val stripe_plan : stripes:int -> Core.Engine.footprint -> int list
(** The ascending stripe indices a step with the given footprint
    acquires: key stripes [0 .. stripes - 1] via {!Storage.Shard.of_key},
    the predicate stripe at index [stripes] (always last), at least one
    stripe always. Exposed for tests; the pool uses exactly this plan. *)

val run : ?monitor:((unit -> live) -> unit) -> config -> job array -> result
(** Execute a fixed batch of jobs to completion. [monitor], if given, is
    called once after the workers have started, with a sampler that can
    be polled from any thread for the duration of the run (spawn a
    thread; the callback itself must return promptly — the calling
    domain becomes worker 0). The sampler must not be used after [run]
    returns. *)

val run_n :
  ?monitor:((unit -> live) -> unit) ->
  config -> txns:int -> gen:(int -> job) -> result
(** [run] with the batch generated on demand: workers call [gen] with
    indices [0 .. txns - 1] and stop. Equivalent to
    [run cfg (Array.init txns gen)] without materializing the array —
    the entry point for out-of-core transaction counts. [gen] must be
    pure, as in {!run_for}. *)

val run_for :
  ?monitor:((unit -> live) -> unit) ->
  config -> duration_s:float -> gen:(int -> job) -> result
(** Open-ended run: workers call [gen] with increasing indices until the
    deadline passes. [gen] is called concurrently and must be pure (e.g.
    seed a fresh [Random.State] from the index). With [config.family =
    None] the family is inferred from [gen 0]. [monitor] as in {!run}. *)

(** {2 Parked, resumable transactions}

    The batch entry points above sleep a blocked worker in place. A
    server multiplexing sessions ≫ workers instead *parks* a blocked
    session and serves runnable ones; this interface exposes the same
    execution machinery — stripe plans, incremental waits-for graph and
    deadlock break, fault / certifier / deadline consultation, metrics,
    journal, trace — one engine step at a time, with the wait returned
    to the caller rather than slept through. The caller (the session
    scheduler in [lib/server]) owns per-transaction bookkeeping: attempt
    numbers, backoff state ({!Backoff.next_us} gives the park delay),
    accumulated wait time, and the step sequence number that addresses
    fault-plan draws. *)

type exec
(** A shared execution context: one engine plus the pool's concurrency
    machinery, without the pool's own workers. Any thread or domain may
    call into it; steps synchronize on the same stripes the batch
    runner uses. *)

(** One step's verdict, from the session's point of view. *)
type session_step =
  | Session_progress      (** executed; feed the next operation *)
  | Session_blocked of { holders : int list }
      (** blocked on these transactions: park, retry the same op after a
          backoff delay *)
  | Session_finished
      (** the transaction was already terminated from outside (deadlock
          victim, certifier doom observed late); check {!exec_status} *)
  | Session_aborted of Core.Engine.abort_reason
      (** aborted itself during this step (injected fault, certifier
          doom, blown deadline, or chosen as its own deadlock victim) *)

val exec_create : config -> family:[ `Locking | `Mv | `Timestamp ] -> exec
(** [config.workers] sizes the heartbeat lanes; pass the number of
    serving threads/domains that will call {!exec_step}. *)

val exec_attach_worker : exec -> worker:int -> unit
(** Bind the calling domain to trace ring [worker] (no-op untraced).
    Call once from each serving domain before it steps sessions. *)

val exec_fresh_tid : exec -> int
(** Globally fresh transaction id (retries must use a new one). *)

val exec_begin :
  ?declared:Isolation.Level.t ->
  exec -> worker:int -> tid:int -> job:int -> name:string -> attempt:int ->
  level:Isolation.Level.t -> read_only:bool -> unit
(** Begin a transaction and emit its [Attempt_begin] event. [job] is the
    session's stable index (journal key); [attempt] starts at 1.
    [declared] (default [level]) is the client's requested level: it is
    what the certifier's mixed criterion judges the transaction against
    and what the attempt event reports, while [level] is what the
    engine executes. *)

val exec_step :
  ?level:Isolation.Level.t ->
  exec -> worker:int -> tid:int -> seq:int -> start_ns:int ->
  Core.Program.op -> session_step
(** Execute one operation. [seq] is the per-transaction step-consultation
    counter (addresses the fault plan — increment it per call); [start_ns]
    is the attempt's start stamp (grounds the deadline check). [level]
    feeds the per-level breakdown should the certifier doom the
    transaction at this step. *)

val exec_env : exec -> tid:int -> Core.Program.env
(** The transaction's observations so far — the read/scan results a
    server returns to its client. *)

val exec_status : exec -> tid:int -> Core.Engine.status

val exec_abort : ?reason:Core.Engine.abort_reason -> exec -> tid:int -> unit
(** Abort from outside the program (e.g. the client disconnected);
    [reason] defaults to [User_abort]. No-op if already terminated. *)

val exec_stall_restart : exec -> tid:int -> unit
(** The starvation safety valve: abort a transaction that exhausted
    [config.max_op_retries] blocked retries of one operation, counting
    the stall and emitting its event; the client restarts it. *)

val exec_family : exec -> [ `Locking | `Mv | `Timestamp ]

val exec_live : exec -> live
(** Sample the running context (see {!live}); safe from any thread,
    including concurrently with steps. *)

val exec_finish :
  exec -> worker:int -> tid:int -> job:int -> name:string ->
  level:Isolation.Level.t -> attempt:int -> start_ns:int -> wait_ns:int ->
  Recorder.outcome
(** Terminal accounting once the transaction's program (or its abort) is
    done: reads the engine status, records commit/abort metrics and the
    journal entry, emits the Commit/Abort event, returns the outcome.
    @raise Stuck if the transaction is somehow still active. *)

val exec_note_wait : exec -> slept_ns:int -> unit
(** Account a parked backoff delay as lock-wait time. *)

val exec_note_retry : exec -> wall_ns:int -> unit
(** Account a failed attempt's wall time as retry overhead and count the
    retry. *)

val exec_note_giveup : exec -> wall_ns:int -> unit
(** Account a failed final attempt: retry budget exhausted. *)

val exec_finalize : exec -> result
(** Stop the clock and collect the run: history, final state, metrics,
    journal, oracle verdict, certifier verdict, trace events. Call once,
    after the last session has finished. *)
