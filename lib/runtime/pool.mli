(** The multicore transaction-processing runtime: a Domain-based worker
    pool that drives one {!Core.Engine} under real concurrency.

    N workers pull jobs (a transaction program plus its isolation level)
    from a shared lock-free queue and execute them against a single
    engine instance. Engine steps are serialized by one coarse execution
    latch — the engines themselves are single-threaded — but everything
    around the latch is parallel: blocked transactions sleep *outside*
    it with capped exponential backoff, so lock waits in the engine
    never idle the other workers, and the interleavings are whatever the
    scheduler produces. A shared waits-for graph detects deadlocks; the
    youngest transaction in a cycle is aborted and its job restarted
    under a fresh transaction id. Aborted attempts (deadlock victim,
    First-Committer-Wins, serialization failure, timestamp too-late) are
    retried up to an attempt budget.

    The run's engine trace, attempt journal, metrics and the
    {!Oracle.t} verdict over the recorded history come back in
    {!result}. *)

module Action := History.Action
module Level := Isolation.Level

type job = {
  name : string;
  program : Core.Program.t;
  level : Level.t;
  read_only : bool;
}

val job : ?name:string -> ?read_only:bool -> level:Level.t -> Core.Program.t -> job

type config = {
  workers : int;
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  family : [ `Locking | `Mv | `Timestamp ] option;
      (** engine family; [None] infers it from the job levels *)
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  max_attempts : int;  (** attempt budget per job, >= 1 *)
  max_op_retries : int;
      (** blocked retries of one operation before the worker aborts its
          own transaction and restarts the job (starvation safety
          valve) *)
  think_us : float;
      (** mean think time slept (outside the latch) between a
          transaction's operations. 0 measures raw engine throughput, but
          then transactions are so short they rarely overlap; a realistic
          think time is what makes the stress contend. *)
  backoff : Backoff.config;  (** blocked-operation waits *)
  retry_backoff : Backoff.config;
      (** transaction restarts after a system abort. Resets per job and
          escalates across attempts; the default window is wider than
          {!field:backoff}'s, because a restart that comes back too soon
          meets the same contenders and deadlocks again. *)
  oracle_phenomena : Phenomena.Phenomenon.t list;
      (** detectors the post-run oracle applies *)
  seed : int;  (** seeds the per-worker backoff jitter *)
  trace : Trace.Sink.t option;
      (** flight recorder for the structured event trace. [None] (the
          default) costs one branch per instrumentation point; [Some]
          records the full transaction lifecycle — attempts, engine
          steps with their history-position ranges, lock traffic,
          backoff sleeps, deadlock victims — into per-worker ring
          buffers that overwrite their oldest events rather than ever
          blocking a worker. *)
}

val config :
  ?workers:int ->
  ?initial:(Action.key * Action.value) list ->
  ?predicates:Storage.Predicate.t list ->
  ?family:[ `Locking | `Mv | `Timestamp ] ->
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?max_attempts:int ->
  ?max_op_retries:int ->
  ?think_us:float ->
  ?backoff:Backoff.config ->
  ?retry_backoff:Backoff.config ->
  ?oracle_phenomena:Phenomena.Phenomenon.t list ->
  ?seed:int ->
  ?trace:Trace.Sink.t ->
  unit ->
  config

type result = {
  history : History.t;
      (** the engine trace of the whole run — a true linearization, since
          every step executed under the execution latch *)
  final : (Action.key * Action.value) list;
  metrics : Metrics.snapshot;
  journal : Recorder.entry list;
  oracle : Oracle.t;
  lock_stats : Locking.Lock_table.stats option;  (** locking engines only *)
  events : Trace.Event.t list;
      (** the merged flight-recorder timeline, sorted by timestamp
          (empty when [config.trace] is [None]) *)
  events_dropped : int;
      (** trace events lost to ring overwrites or unattached domains *)
}

exception Stuck of string
(** Raised only on runtime bugs: a transaction left neither committed nor
    aborted after its program ran to completion. *)

val run : config -> job array -> result
(** Execute a fixed batch of jobs to completion. *)

val run_for : config -> duration_s:float -> gen:(int -> job) -> result
(** Open-ended run: workers call [gen] with increasing indices until the
    deadline passes. [gen] is called concurrently and must be pure (e.g.
    seed a fresh [Random.State] from the index). With [config.family =
    None] the family is inferred from [gen 0]. *)
