(** Capped exponential backoff with full jitter, for blocked lock waits
    and transaction restarts. Each waiter sleeps a uniformly random slice
    of the current window, then doubles the window up to the cap — the
    classic recipe that de-synchronizes contending workers instead of
    letting them retry in lockstep. *)

type config = {
  base_us : float;  (** first window, microseconds *)
  cap_us : float;   (** window ceiling *)
  multiplier : float;
}

val default : config
(** 20µs doubling to a 2ms cap. *)

type t

val create : ?rng:Random.State.t -> config -> t
(** A backoff state is owned by one worker; it is not thread-safe. *)

val reset : t -> unit
(** Back to the base window (call after progress). *)

val next_us : t -> float
(** Draw the jittered slice a waiter would sleep now and escalate the
    window — without sleeping. For callers that park instead of blocking
    (the server's session scheduler): the returned microseconds are the
    wake delay. Counts as a wait. *)

val wait : t -> unit
(** Sleep a jittered slice of the current window and escalate it. *)

val waits : t -> int
(** Total sleeps performed since creation. *)
