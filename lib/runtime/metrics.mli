(** Runtime metrics: throughput, latency quantiles and abort accounting
    for the multicore worker pool.

    Counters are sharded per domain ({!Stripes.Counter}) and commit
    latencies land in a lock-free log₂ histogram, so recording never
    serializes the workers. Quantiles are therefore bucket-resolution
    approximations (successive buckets differ by 2×), which is enough to
    track the performance trajectory across PRs. *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default 1) sizes the per-stripe acquisition counters: one
    pair per key stripe plus one for the predicate stripe. *)

val start : t -> unit
(** Mark the wall-clock start of the measured run. *)

val stop : t -> unit
(** Mark the end; {!snapshot} then reports the closed interval. *)

val record_commit : ?wait_ns:int -> t -> latency_ns:int -> unit
(** [wait_ns] is the share of [latency_ns] the attempt spent sleeping on
    blocked operations; the remainder is counted as execution time in the
    phase histograms. Defaults to 0 (all execution). *)

val record_abort : t -> Core.Engine.abort_reason -> unit

val record_block : t -> unit
(** A step attempt came back [Blocked] (a lock wait). *)

val record_wait_ns : t -> int -> unit
(** Time actually slept waiting for a lock. *)

val record_retry : t -> unit
(** A transaction attempt aborted and will be restarted. *)

val record_stripe_acquire : t -> int -> contended:bool -> unit
(** Stripe [i] was acquired; [contended] means the mutex was held when
    first tried ({!Stripes.acquire} returned [true]). *)

val record_deadlock : t -> unit
(** A waits-for cycle was broken by aborting a victim. *)

val record_stall : t -> unit
(** A worker restarted itself after exhausting blocked retries on one
    operation (lost-wakeup / starvation safety valve). *)

val record_giveup : t -> unit
(** A job exhausted its attempt budget without committing. *)

val record_retry_overhead_ns : t -> int -> unit
(** Time charged to retrying: a failed attempt's whole wall time, or a
    restart backoff sleep between attempts. *)

val record_fault : t -> unit
(** The fault plan injected a fault (any class) at a consulted point. *)

val record_deadline_exceeded : t -> unit
(** An attempt ran past its deadline and aborted itself. *)

val record_watchdog : t -> unit
(** The watchdog saw a worker make no step progress past its threshold. *)

val record_certifier_abort : t -> unit
(** The online certifier doomed a transaction whose action closed a
    dependency cycle (also recorded as an abort with reason
    [Certifier_abort] when the worker notices the doom). *)

type snapshot = {
  committed : int;
  aborted : (Core.Engine.abort_reason * int) list;  (** non-zero reasons *)
  aborted_total : int;
  retries : int;
  giveups : int;
  deadlocks : int;
  stalls : int;
  lock_waits : int;
  wait_ns : int;
  wall_s : float;
  throughput : float;  (** committed transactions per second *)
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
  lat_max_ms : float;
  lat_mean_ms : float;
  exec_p50_ms : float;  (** committed attempts' engine-execution phase *)
  exec_p99_ms : float;
  exec_mean_ms : float;
  lock_wait_p50_ms : float;  (** committed attempts' lock-wait phase *)
  lock_wait_p99_ms : float;
  lock_wait_mean_ms : float;
  retry_overhead_s : float;
      (** total wall time of failed attempts plus restart backoffs *)
  stripe_acquired : int;  (** total stripe-mutex acquisitions *)
  stripe_contended : int;  (** of those, how many found the mutex held *)
  lock_stripe_contended : float;
      (** contended / acquired — the striping health number: near 0 means
          workers rarely meet on a stripe, near 1 means the stripe set
          degenerated to a coarse latch *)
  stripe_detail : (int * int) array;
      (** per stripe (the last entry is the predicate stripe):
          (acquired, contended) *)
  faults_injected : int;
      (** fault-plan injections (events, not aborts: a stall counts) *)
  deadline_exceeded : int;  (** attempts aborted for blowing the deadline *)
  watchdog_kicks : int;  (** watchdog sightings of a stuck worker *)
  certifier_aborts : int;
      (** transactions doomed by the online certifier for closing a
          dependency cycle *)
}

val snapshot : t -> snapshot
(** Call after the workers have joined (counter sums are then exact). *)

val pp : snapshot Fmt.t

val abort_reason_slug : Core.Engine.abort_reason -> string
(** Stable machine-readable name, used as the JSON key. *)

val to_json : ?extra:(string * string) list -> snapshot -> string
(** One JSON object; [extra] prepends already-encoded key/value pairs
    (e.g. [("level", {|"serializable"|})]). *)
