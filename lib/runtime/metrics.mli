(** Runtime metrics: throughput, latency quantiles and abort accounting
    for the multicore worker pool.

    Counters are sharded per domain ({!Stripes.Counter}) and commit
    latencies land in a lock-free log₂ histogram, so recording never
    serializes the workers. Quantiles are therefore bucket-resolution
    approximations (successive buckets differ by 2×), which is enough to
    track the performance trajectory across PRs.

    {2 Live-read semantics}

    {!snapshot} may be called at any time, from any thread, while the
    workers are still recording. Each counter read is individually
    atomic: a per-domain cell is an [Atomic.t], so a sum never tears a
    cell and never goes backwards between two snapshots of the same
    counter (counters are monotone). What a live snapshot does {e not}
    promise is cross-counter consistency — a commit that lands between
    reading [committed] and reading [lat_hist] appears in one but not
    the other, so derived ratios can be off by the handful of events in
    flight. Once the workers have joined (after {!stop}), a snapshot is
    exact. *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default 1) sizes the per-stripe acquisition counters: one
    pair per key stripe plus one for the predicate stripe. *)

val start : t -> unit
(** Mark the wall-clock start of the measured run. *)

val stop : t -> unit
(** Mark the end; {!snapshot} then reports the closed interval. *)

val record_commit :
  ?wait_ns:int -> ?level:Isolation.Level.t -> t -> latency_ns:int -> unit
(** [wait_ns] is the share of [latency_ns] the attempt spent sleeping on
    blocked operations; the remainder is counted as execution time in the
    phase histograms. Defaults to 0 (all execution). [level] (when the
    caller knows it) also feeds the per-level breakdown. *)

val record_abort : ?level:Isolation.Level.t -> t -> Core.Engine.abort_reason -> unit

val record_block : t -> unit
(** A step attempt came back [Blocked] (a lock wait). *)

val record_wait_ns : t -> int -> unit
(** Time actually slept waiting for a lock. *)

val record_retry : t -> unit
(** A transaction attempt aborted and will be restarted. *)

val record_stripe_acquire : t -> int -> contended:bool -> unit
(** Stripe [i] was acquired; [contended] means the mutex was held when
    first tried ({!Stripes.acquire} returned [true]). *)

val record_deadlock : t -> unit
(** A waits-for cycle was broken by aborting a victim. *)

val record_stall : t -> unit
(** A worker restarted itself after exhausting blocked retries on one
    operation (lost-wakeup / starvation safety valve). *)

val record_giveup : t -> unit
(** A job exhausted its attempt budget without committing. *)

val record_retry_overhead_ns : t -> int -> unit
(** Time charged to retrying: a failed attempt's whole wall time, or a
    restart backoff sleep between attempts. *)

val record_fault : t -> unit
(** The fault plan injected a fault (any class) at a consulted point. *)

val record_deadline_exceeded : t -> unit
(** An attempt ran past its deadline and aborted itself. *)

val record_watchdog : t -> unit
(** The watchdog saw a worker make no step progress past its threshold. *)

val record_certifier_abort : ?level:Isolation.Level.t -> t -> unit
(** The online certifier doomed a transaction whose action closed a
    dependency cycle (also recorded as an abort with reason
    [Certifier_abort] when the worker notices the doom). *)

type level_stats = {
  level : Isolation.Level.t;
  l_committed : int;
  l_aborted : int;
  l_doomed : int;  (** certifier dooms at this level *)
}

type snapshot = {
  taken_at : float;  (** unix time the snapshot was cut *)
  committed : int;
  aborted : (Core.Engine.abort_reason * int) list;  (** non-zero reasons *)
  aborted_total : int;
  retries : int;
  giveups : int;
  deadlocks : int;
  stalls : int;
  lock_waits : int;
  wait_ns : int;
  wall_s : float;
  throughput : float;  (** committed transactions per second *)
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
  lat_max_ms : float;
  lat_mean_ms : float;
  exec_p50_ms : float;  (** committed attempts' engine-execution phase *)
  exec_p99_ms : float;
  exec_mean_ms : float;
  lock_wait_p50_ms : float;  (** committed attempts' lock-wait phase *)
  lock_wait_p99_ms : float;
  lock_wait_mean_ms : float;
  retry_overhead_s : float;
      (** total wall time of failed attempts plus restart backoffs *)
  stripe_acquired : int;  (** total stripe-mutex acquisitions *)
  stripe_contended : int;  (** of those, how many found the mutex held *)
  lock_stripe_contended : float;
      (** contended / acquired — the striping health number: near 0 means
          workers rarely meet on a stripe, near 1 means the stripe set
          degenerated to a coarse latch *)
  stripe_detail : (int * int) array;
      (** per stripe (the last entry is the predicate stripe):
          (acquired, contended) *)
  faults_injected : int;
      (** fault-plan injections (events, not aborts: a stall counts) *)
  deadline_exceeded : int;  (** attempts aborted for blowing the deadline *)
  watchdog_kicks : int;  (** watchdog sightings of a stuck worker *)
  certifier_aborts : int;
      (** transactions doomed by the online certifier for closing a
          dependency cycle *)
  lat_hist : int array;
      (** raw commit-latency bucket counts (bucket i covers latencies of
          roughly [2^i] ns); monotone between snapshots, so two snapshots
          diff into an interval histogram *)
  per_level : level_stats list;
      (** per-isolation-level outcomes, non-zero levels only; sites that
          don't know the level feed only the global counters, so the
          column sums may trail them *)
}

val snapshot : t -> snapshot
(** Safe to call while the workers run (see the live-read semantics
    above): each counter is individually consistent and monotone, the
    set is only approximately mutually consistent until the workers have
    joined — then it is exact. *)

val nbuckets : int
(** Number of log₂ latency buckets in [lat_hist]. *)

val hist_quantile : int array -> int -> float -> float
(** [hist_quantile hist total q] reads quantile [q] (in \[0,1\]) off a
    bucket-count array in the [lat_hist] encoding, in milliseconds —
    the geometric midpoint of the bucket where the cumulative count
    reaches the rank. Used by live consumers to quote interval
    latencies from snapshot diffs. *)

val pp : snapshot Fmt.t

val abort_reason_slug : Core.Engine.abort_reason -> string
(** Stable machine-readable name, used as the JSON key. *)

val to_json : ?extra:(string * string) list -> snapshot -> string
(** One JSON object; [extra] prepends already-encoded key/value pairs
    (e.g. [("level", {|"serializable"|})]). *)
