(** Striped synchronization primitives for the multicore runtime.

    A stripe set is a fixed array of mutexes indexed by key hash: callers
    that touch different stripes never contend, which is the first step
    from a single coarse latch toward a scalable lock table and store
    (ROADMAP: striped lock table tuning).

    {!Counter} is a sharded counter in the style of LongAdder: increments
    land on a per-domain atomic cell, so hot counters (commits, lock
    waits) do not serialize the worker pool on one cache line; [sum]
    folds the cells. *)

type t

val create : int -> t
(** [create n] makes a set of [max 1 n] stripes. *)

val size : t -> int

val stripe_of_key : t -> string -> int
(** The stripe a key hashes to — {!Storage.Shard.of_key}, the same map
    the sharded store and striped lock table index by. *)

val acquire : t -> int -> bool
(** Lock stripe [i] (must be a valid index), returning [true] iff the
    mutex was contended — i.e. a first [try_lock] failed and the caller
    had to wait. Pair with {!release}. *)

val release : t -> int -> unit

val with_index : t -> int -> (unit -> 'a) -> 'a
(** Run a function holding the stripe [i mod size]. *)

val with_key : t -> string -> (unit -> 'a) -> 'a
(** Run a function holding the key's stripe. *)

module Counter : sig
  type t

  val create : ?stripes:int -> unit -> t
  val add : t -> int -> unit
  val incr : t -> unit

  val sum : t -> int
  (** Fold all cells. Each cell is an [Atomic.t], so a live sum never
      tears a cell and — the counter being add-only — never decreases
      between two reads. A live sum can lag increments that land on
      already-folded cells mid-fold; it is exact once writers are
      quiescent. This is the contract {!Metrics.snapshot}'s live reads
      are built on. *)
end
