(* Runtime metrics. Recording is lock-free: plain counters are sharded
   per domain, commit latencies go into a log2-bucketed histogram of
   atomics. Quantiles read the histogram, so they are approximate to one
   bucket (successive buckets differ by 2x) — precise enough to compare
   levels, mixes and PRs against each other. *)

module Engine = Core.Engine
module L = Isolation.Level

let buckets = 64
let nbuckets = buckets

let levels = Array.of_list L.all
let nlevels = Array.length levels

let level_index = function
  | L.Degree_0 -> 0
  | L.Read_uncommitted -> 1
  | L.Read_committed -> 2
  | L.Cursor_stability -> 3
  | L.Repeatable_read -> 4
  | L.Snapshot -> 5
  | L.Oracle_read_consistency -> 6
  | L.Serializable_snapshot -> 7
  | L.Timestamp_ordering -> 8
  | L.Serializable -> 9

type t = {
  committed : Stripes.Counter.t;
  aborted : Stripes.Counter.t array; (* indexed by reason *)
  retries : Stripes.Counter.t;
  giveups : Stripes.Counter.t;
  deadlocks : Stripes.Counter.t;
  stalls : Stripes.Counter.t;
  lock_waits : Stripes.Counter.t;
  wait_ns : Stripes.Counter.t;
  lat_hist : int Atomic.t array;  (* commit latencies, bucket = log2 ns *)
  lat_sum_ns : Stripes.Counter.t;
  lat_max_ns : int Atomic.t;      (* CAS-raised high-water mark *)
  (* Phase breakdown of committed attempts: wall = exec + lock wait.
     Failed attempts land in retry_overhead_ns instead (their whole wall
     time, plus the restart backoffs between attempts). *)
  exec_hist : int Atomic.t array;
  exec_sum_ns : Stripes.Counter.t;
  cwait_hist : int Atomic.t array;
  cwait_sum_ns : Stripes.Counter.t;
  retry_overhead_ns : Stripes.Counter.t;
  (* Striped-execution observability: per-stripe acquisition counts and
     how many of those acquisitions found the stripe mutex held (a failed
     try_lock). One atomic pair per stripe — a worker increments only the
     stripes it acquires, so there is no shared hot cell. *)
  stripe_acquired : int Atomic.t array;
  stripe_contended : int Atomic.t array;
  (* Chaos counters: faults the plan actually injected, attempts that
     blew their deadline, and watchdog sightings of a stuck worker. The
     first two also show up as abort reasons; these count events, not
     aborts (a stall injects a fault but aborts nothing). *)
  faults_injected : Stripes.Counter.t;
  deadline_exceeded : Stripes.Counter.t;
  watchdog_kicks : Stripes.Counter.t;
  (* Online certification: transactions the certifier doomed because one
     of their actions closed a dependency cycle. Also an abort reason;
     kept as its own counter so the stress report surfaces it even when
     buried among retries. *)
  certifier_aborts : Stripes.Counter.t;
  (* Per-isolation-level outcome breakdown (indexed by [level_index]).
     Only the sites that know the transaction's level feed these, so the
     column sums can trail the global counters (e.g. certifier dooms
     noticed outside a leveled context). *)
  level_commits : Stripes.Counter.t array;
  level_aborts : Stripes.Counter.t array;
  level_dooms : Stripes.Counter.t array;
  mutable started_at : float;
  mutable stopped_at : float;
}

let reasons =
  [| Engine.User_abort; Engine.Deadlock_victim; Engine.First_committer_wins;
     Engine.First_updater_wins; Engine.Serialization_failure; Engine.Too_late;
     Engine.Fault_injected; Engine.Deadline_exceeded; Engine.Certifier_abort |]

let reason_index = function
  | Engine.User_abort -> 0
  | Engine.Deadlock_victim -> 1
  | Engine.First_committer_wins -> 2
  | Engine.First_updater_wins -> 3
  | Engine.Serialization_failure -> 4
  | Engine.Too_late -> 5
  | Engine.Fault_injected -> 6
  | Engine.Deadline_exceeded -> 7
  | Engine.Certifier_abort -> 8

let abort_reason_slug = function
  | Engine.User_abort -> "user_abort"
  | Engine.Deadlock_victim -> "deadlock_victim"
  | Engine.First_committer_wins -> "first_committer_wins"
  | Engine.First_updater_wins -> "first_updater_wins"
  | Engine.Serialization_failure -> "serialization_failure"
  | Engine.Too_late -> "too_late"
  | Engine.Fault_injected -> "fault_injected"
  | Engine.Deadline_exceeded -> "deadline_exceeded"
  | Engine.Certifier_abort -> "certifier_abort"

let create ?(stripes = 1) () =
  let nstripes = max 1 stripes + 1 (* + the predicate stripe *) in
  {
    committed = Stripes.Counter.create ();
    aborted = Array.init (Array.length reasons) (fun _ -> Stripes.Counter.create ());
    retries = Stripes.Counter.create ();
    giveups = Stripes.Counter.create ();
    deadlocks = Stripes.Counter.create ();
    stalls = Stripes.Counter.create ();
    lock_waits = Stripes.Counter.create ();
    wait_ns = Stripes.Counter.create ();
    lat_hist = Array.init buckets (fun _ -> Atomic.make 0);
    lat_sum_ns = Stripes.Counter.create ();
    lat_max_ns = Atomic.make 0;
    exec_hist = Array.init buckets (fun _ -> Atomic.make 0);
    exec_sum_ns = Stripes.Counter.create ();
    cwait_hist = Array.init buckets (fun _ -> Atomic.make 0);
    cwait_sum_ns = Stripes.Counter.create ();
    retry_overhead_ns = Stripes.Counter.create ();
    stripe_acquired = Array.init nstripes (fun _ -> Atomic.make 0);
    stripe_contended = Array.init nstripes (fun _ -> Atomic.make 0);
    faults_injected = Stripes.Counter.create ();
    deadline_exceeded = Stripes.Counter.create ();
    watchdog_kicks = Stripes.Counter.create ();
    certifier_aborts = Stripes.Counter.create ();
    level_commits = Array.init nlevels (fun _ -> Stripes.Counter.create ());
    level_aborts = Array.init nlevels (fun _ -> Stripes.Counter.create ());
    level_dooms = Array.init nlevels (fun _ -> Stripes.Counter.create ());
    started_at = 0.;
    stopped_at = 0.;
  }

let start t = t.started_at <- Unix.gettimeofday ()
let stop t = t.stopped_at <- Unix.gettimeofday ()

let bucket_of_ns ns =
  let rec go i n = if n <= 1 || i >= buckets - 1 then i else go (i + 1) (n lsr 1) in
  go 0 (max 1 ns)

let rec raise_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then raise_max a v

let record_level arr = function
  | None -> ()
  | Some level -> Stripes.Counter.incr arr.(level_index level)

let record_commit ?(wait_ns = 0) ?level t ~latency_ns =
  Stripes.Counter.incr t.committed;
  record_level t.level_commits level;
  Stripes.Counter.add t.lat_sum_ns latency_ns;
  raise_max t.lat_max_ns latency_ns;
  ignore (Atomic.fetch_and_add t.lat_hist.(bucket_of_ns latency_ns) 1);
  let wait_ns = min wait_ns latency_ns in
  let exec_ns = latency_ns - wait_ns in
  Stripes.Counter.add t.exec_sum_ns exec_ns;
  ignore (Atomic.fetch_and_add t.exec_hist.(bucket_of_ns exec_ns) 1);
  Stripes.Counter.add t.cwait_sum_ns wait_ns;
  ignore (Atomic.fetch_and_add t.cwait_hist.(bucket_of_ns wait_ns) 1)

let record_retry_overhead_ns t ns = Stripes.Counter.add t.retry_overhead_ns ns

let record_abort ?level t reason =
  Stripes.Counter.incr t.aborted.(reason_index reason);
  record_level t.level_aborts level
let record_block t = Stripes.Counter.incr t.lock_waits
let record_wait_ns t ns = Stripes.Counter.add t.wait_ns ns
let record_retry t = Stripes.Counter.incr t.retries

let record_stripe_acquire t i ~contended =
  if i >= 0 && i < Array.length t.stripe_acquired then begin
    ignore (Atomic.fetch_and_add t.stripe_acquired.(i) 1);
    if contended then ignore (Atomic.fetch_and_add t.stripe_contended.(i) 1)
  end
let record_deadlock t = Stripes.Counter.incr t.deadlocks
let record_stall t = Stripes.Counter.incr t.stalls
let record_giveup t = Stripes.Counter.incr t.giveups
let record_fault t = Stripes.Counter.incr t.faults_injected
let record_deadline_exceeded t = Stripes.Counter.incr t.deadline_exceeded
let record_watchdog t = Stripes.Counter.incr t.watchdog_kicks
let record_certifier_abort ?level t =
  Stripes.Counter.incr t.certifier_aborts;
  record_level t.level_dooms level

type level_stats = {
  level : L.t;
  l_committed : int;
  l_aborted : int;
  l_doomed : int;
}

type snapshot = {
  taken_at : float;  (* when the snapshot was cut (unix seconds) *)
  committed : int;
  aborted : (Engine.abort_reason * int) list;
  aborted_total : int;
  retries : int;
  giveups : int;
  deadlocks : int;
  stalls : int;
  lock_waits : int;
  wait_ns : int;
  wall_s : float;
  throughput : float;
  lat_p50_ms : float;
  lat_p90_ms : float;
  lat_p99_ms : float;
  lat_max_ms : float;
  lat_mean_ms : float;
  exec_p50_ms : float;
  exec_p99_ms : float;
  exec_mean_ms : float;
  lock_wait_p50_ms : float;
  lock_wait_p99_ms : float;
  lock_wait_mean_ms : float;
  retry_overhead_s : float;
  stripe_acquired : int;
  stripe_contended : int;
  lock_stripe_contended : float;
  stripe_detail : (int * int) array; (* per stripe: acquired, contended *)
  faults_injected : int;
  deadline_exceeded : int;
  watchdog_kicks : int;
  certifier_aborts : int;
  lat_hist : int array;
  per_level : level_stats list;
}

(* Quantile from a plain bucket-count array: the geometric midpoint of
   the first bucket at which the cumulative count reaches the rank. *)
let hist_quantile hist total q =
  if total = 0 then 0.
  else begin
    let n = Array.length hist in
    let rank = max 1 (int_of_float (ceil (q *. float total))) in
    let rec go i acc =
      if i >= n then float n
      else
        let acc = acc + hist.(i) in
        if acc >= rank then float i else go (i + 1) acc
    in
    let b = go 0 0 in
    (2. ** b) *. 1.5 /. 1e6
  end

let quantile hist total q =
  hist_quantile (Array.map Atomic.get hist) total q

let snapshot (t : t) =
  let committed = Stripes.Counter.sum t.committed in
  let stripe_acquired =
    Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.stripe_acquired
  in
  let stripe_contended =
    Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.stripe_contended
  in
  let aborted_counts =
    Array.to_list
      (Array.mapi (fun i c -> (reasons.(i), Stripes.Counter.sum c)) t.aborted)
  in
  let aborted = List.filter (fun (_, n) -> n > 0) aborted_counts in
  let aborted_total = List.fold_left (fun acc (_, n) -> acc + n) 0 aborted in
  let now = Unix.gettimeofday () in
  let stopped = if t.stopped_at > 0. then t.stopped_at else now in
  let wall_s = Float.max 1e-9 (stopped -. t.started_at) in
  let sum_ns = Stripes.Counter.sum t.lat_sum_ns in
  let per_level =
    Array.to_list
      (Array.mapi
         (fun i level ->
           {
             level;
             l_committed = Stripes.Counter.sum t.level_commits.(i);
             l_aborted = Stripes.Counter.sum t.level_aborts.(i);
             l_doomed = Stripes.Counter.sum t.level_dooms.(i);
           })
         levels)
    |> List.filter (fun l -> l.l_committed + l.l_aborted + l.l_doomed > 0)
  in
  {
    taken_at = now;
    committed;
    aborted;
    aborted_total;
    retries = Stripes.Counter.sum t.retries;
    giveups = Stripes.Counter.sum t.giveups;
    deadlocks = Stripes.Counter.sum t.deadlocks;
    stalls = Stripes.Counter.sum t.stalls;
    lock_waits = Stripes.Counter.sum t.lock_waits;
    wait_ns = Stripes.Counter.sum t.wait_ns;
    wall_s;
    throughput = float committed /. wall_s;
    lat_p50_ms = quantile t.lat_hist committed 0.50;
    lat_p90_ms = quantile t.lat_hist committed 0.90;
    lat_p99_ms = quantile t.lat_hist committed 0.99;
    lat_max_ms = float (Atomic.get t.lat_max_ns) /. 1e6;
    lat_mean_ms =
      (if committed = 0 then 0. else float sum_ns /. float committed /. 1e6);
    exec_p50_ms = quantile t.exec_hist committed 0.50;
    exec_p99_ms = quantile t.exec_hist committed 0.99;
    exec_mean_ms =
      (if committed = 0 then 0.
       else float (Stripes.Counter.sum t.exec_sum_ns) /. float committed /. 1e6);
    lock_wait_p50_ms = quantile t.cwait_hist committed 0.50;
    lock_wait_p99_ms = quantile t.cwait_hist committed 0.99;
    lock_wait_mean_ms =
      (if committed = 0 then 0.
       else float (Stripes.Counter.sum t.cwait_sum_ns) /. float committed /. 1e6);
    retry_overhead_s = float (Stripes.Counter.sum t.retry_overhead_ns) /. 1e9;
    stripe_acquired;
    stripe_contended;
    lock_stripe_contended =
      (if stripe_acquired = 0 then 0.
       else float stripe_contended /. float stripe_acquired);
    stripe_detail =
      Array.map2
        (fun a c -> (Atomic.get a, Atomic.get c))
        t.stripe_acquired t.stripe_contended;
    faults_injected = Stripes.Counter.sum t.faults_injected;
    deadline_exceeded = Stripes.Counter.sum t.deadline_exceeded;
    watchdog_kicks = Stripes.Counter.sum t.watchdog_kicks;
    certifier_aborts = Stripes.Counter.sum t.certifier_aborts;
    lat_hist = Array.map Atomic.get t.lat_hist;
    per_level;
  }

let pp ppf s =
  Fmt.pf ppf
    "@[<v>committed %d  aborted %d  retries %d  giveups %d@,\
     throughput %.0f txn/s  (wall %.3fs)@,\
     latency ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  mean %.3f@,\
     phases ms: exec p50 %.3f p99 %.3f mean %.3f | lock-wait p50 %.3f \
     p99 %.3f mean %.3f | retry overhead %.3fs@,\
     lock waits %d  wait %.3fs  deadlocks %d  stalls %d" s.committed
    s.aborted_total s.retries s.giveups s.throughput s.wall_s s.lat_p50_ms
    s.lat_p90_ms s.lat_p99_ms s.lat_max_ms s.lat_mean_ms s.exec_p50_ms
    s.exec_p99_ms s.exec_mean_ms s.lock_wait_p50_ms s.lock_wait_p99_ms
    s.lock_wait_mean_ms s.retry_overhead_s s.lock_waits
    (float s.wait_ns /. 1e9)
    s.deadlocks s.stalls;
  if s.stripe_acquired > 0 then
    Fmt.pf ppf "@,stripes: %d acquisitions  %d contended  (ratio %.4f)"
      s.stripe_acquired s.stripe_contended s.lock_stripe_contended;
  if s.faults_injected > 0 || s.deadline_exceeded > 0 || s.watchdog_kicks > 0
  then
    Fmt.pf ppf "@,chaos: faults %d  deadline exceeded %d  watchdog kicks %d"
      s.faults_injected s.deadline_exceeded s.watchdog_kicks;
  if s.certifier_aborts > 0 then
    Fmt.pf ppf "@,certifier aborts %d" s.certifier_aborts;
  if s.aborted <> [] then begin
    Fmt.pf ppf "@,aborts by reason:";
    List.iter
      (fun (r, n) -> Fmt.pf ppf " %a=%d" Engine.pp_abort_reason r n)
      s.aborted
  end;
  (match s.per_level with
  | [] | [ _ ] -> () (* a single level adds nothing over the totals *)
  | per_level ->
    Fmt.pf ppf "@,by level:";
    List.iter
      (fun l ->
        Fmt.pf ppf " %s=%d/%d" (L.slug l.level) l.l_committed l.l_aborted)
      per_level);
  Fmt.pf ppf "@]"

let to_json ?(extra = []) s =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b (Printf.sprintf "%S:%s" k v)
  in
  List.iter (fun (k, v) -> field k v) extra;
  field "taken_at" (Printf.sprintf "%.6f" s.taken_at);
  field "committed" (string_of_int s.committed);
  field "aborted_total" (string_of_int s.aborted_total);
  field "aborted"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map
             (fun (r, n) -> Printf.sprintf "%S:%d" (abort_reason_slug r) n)
             s.aborted)));
  field "retries" (string_of_int s.retries);
  field "giveups" (string_of_int s.giveups);
  field "deadlocks" (string_of_int s.deadlocks);
  field "stalls" (string_of_int s.stalls);
  field "lock_waits" (string_of_int s.lock_waits);
  field "wait_s" (Printf.sprintf "%.6f" (float s.wait_ns /. 1e9));
  field "wall_s" (Printf.sprintf "%.6f" s.wall_s);
  field "throughput_tps" (Printf.sprintf "%.1f" s.throughput);
  field "lat_p50_ms" (Printf.sprintf "%.4f" s.lat_p50_ms);
  field "lat_p90_ms" (Printf.sprintf "%.4f" s.lat_p90_ms);
  field "lat_p99_ms" (Printf.sprintf "%.4f" s.lat_p99_ms);
  field "lat_max_ms" (Printf.sprintf "%.4f" s.lat_max_ms);
  field "lat_mean_ms" (Printf.sprintf "%.4f" s.lat_mean_ms);
  field "exec_p50_ms" (Printf.sprintf "%.4f" s.exec_p50_ms);
  field "exec_p99_ms" (Printf.sprintf "%.4f" s.exec_p99_ms);
  field "exec_mean_ms" (Printf.sprintf "%.4f" s.exec_mean_ms);
  field "lock_wait_p50_ms" (Printf.sprintf "%.4f" s.lock_wait_p50_ms);
  field "lock_wait_p99_ms" (Printf.sprintf "%.4f" s.lock_wait_p99_ms);
  field "lock_wait_mean_ms" (Printf.sprintf "%.4f" s.lock_wait_mean_ms);
  field "retry_overhead_s" (Printf.sprintf "%.6f" s.retry_overhead_s);
  field "stripe_acquired" (string_of_int s.stripe_acquired);
  field "stripe_contended" (string_of_int s.stripe_contended);
  field "lock_stripe_contended" (Printf.sprintf "%.6f" s.lock_stripe_contended);
  field "faults_injected" (string_of_int s.faults_injected);
  field "deadline_exceeded" (string_of_int s.deadline_exceeded);
  field "watchdog_kicks" (string_of_int s.watchdog_kicks);
  field "certifier_aborts" (string_of_int s.certifier_aborts);
  field "per_level"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map
             (fun l ->
               Printf.sprintf "%S:{\"committed\":%d,\"aborted\":%d,\"doomed\":%d}"
                 (L.slug l.level) l.l_committed l.l_aborted l.l_doomed)
             s.per_level)));
  field "lat_hist"
    (Printf.sprintf "[%s]"
       (String.concat ","
          (Array.to_list (Array.map string_of_int s.lat_hist))));
  Buffer.add_char b '}';
  Buffer.contents b
