(** Process memory readings — the measurable side of the out-of-core
    pipeline's flat-memory claim. RSS figures come from
    [/proc/self/status] and read as 0 where procfs is unavailable. *)

val vm_hwm_kb : unit -> int
(** Peak resident set size (VmHWM), in kB. *)

val vm_rss_kb : unit -> int
(** Current resident set size (VmRSS), in kB. *)

val reset_peak : unit -> unit
(** Reset the kernel's peak-RSS watermark (Linux [clear_refs]); a no-op
    elsewhere. Lets a bench attribute a peak to one cell. *)

val heap_words : unit -> int
(** Current OCaml heap size in words ({!Gc.quick_stat}). *)

type reading = { r_vm_hwm_kb : int; r_vm_rss_kb : int; r_heap_words : int }

val read : unit -> reading
val to_json : reading -> string
(** One JSON object: [{"vm_hwm_kb":..,"vm_rss_kb":..,"heap_words":..}]. *)

val pp : reading Fmt.t
