(* Online serializability certification over the incremental dependency
   graph ({!Graph.Incremental}).

   The certifier consumes the recorded history action by action — fed by
   the engine's trace hook as each step commits to the trace, or offline
   via {!replay} — and maintains a *reduced* dependency graph whose
   transitive closure equals the offline graph's:

   - Single-version families (locking, timestamp ordering): per key, a
     stack of "eras", one per write, each holding its writer and the
     readers that observed it (the explicit bottom era has writer 0, the
     initial state). A read adds wr(top.writer -> reader) and joins the
     top era; a write adds ww(top.writer -> writer) plus
     rw(top.readers -> writer) and pushes a fresh era. Only
     immediate-neighbour edges are inserted; earlier writers and buried
     readers are reached through the ww chain, so the closure — and
     hence the cycles — match {!History.Conflict.graph} exactly.
     Predicates keep flat reader/writer lists per predicate name,
     mirroring {!History.Action.conflicts} (no era chain: a predicate
     read conflicts with every writer that declares the name).

   - Multiversion family: a mirror of {!History.Mv.mvsg}. Version order
     is commit order, so ww(lcw -> T) and rw(readers(lcw) -> T) land
     when T commits a key; reads add wr(version -> reader) plus
     rw(reader -> committed successor version). Writes and reads also
     add those edges *optimistically* against pending writers — genuine
     exactly if the writer commits, and erased by the purge if it
     aborts — so a wr-ww-rw cycle (e.g. write skew under SI) is caught
     before the closing transaction commits, not after.

   An aborted transaction is purged: its graph node (and thus every
   edge through it) disappears, and the single-version era merge
   re-wires the surviving neighbours (wr from the writer below, rw/ww
   to the writer above) so the graph keeps describing exactly the
   dependencies among surviving transactions.

   {!Graph.Incremental.add_edge} rejects an edge that would close a
   cycle and returns the witness immediately. In [Enforce] mode the
   certifier then dooms the acting transaction (or, for edges not
   attributable to a live actor — commit-time multiversion closures,
   purge re-wires — the youngest still-active cycle member); the pool
   polls {!doomed} and aborts the victim before its next operation, so
   the committed projection stays acyclic. In [Observe] mode rejected
   edges are only recorded. Either way {!finalize} replays the rejected
   edges whose endpoints both committed, in arrival order, over the
   purged graph: the first re-rejection is a genuine committed-
   projection cycle, and its absence is a full, non-windowed
   serializability verdict.

   Under the [Mixed] criterion the level is a per-transaction property
   ({!note_level}) and a cycle is judged per member: the certifier
   classifies the rejected cycle into the Table-4 phenomena it could
   exhibit (from the kinds of its edges, kept in a side table — edges
   themselves are inserted exactly as under serializability, so a
   strong transaction is still protected by paths through weak ones)
   and dooms a member only when every candidate phenomenon is forbidden
   at that member's own level. A cycle harming no member is tolerated:
   the closing edge stays out of the graph but is stashed, and the
   finalize replay re-judges every stashed committed-committed edge,
   attributing each re-rejection's permitted candidates to the
   committed members' levels (the anomaly × victim-level matrix) and
   counting the forbidden ones as harm — [mixed_ok] is that replay
   coming back harm-free, the mixed-criterion analogue of
   [serializable]. *)

module Action = History.Action
module Level = Isolation.Level
module Spec = Isolation.Spec
module P = Phenomena.Phenomenon

type mode = Observe | Enforce
type family = [ `Locking | `Mv | `Timestamp ]
type criterion = Serializability | Mixed
type kind = Wr | Ww | Rw

let kind_name = function Wr -> "wr" | Ww -> "ww" | Rw -> "rw"

type violation = {
  cycle : int list;
  dep : string;
  src : int;
  dst : int;
  doomed : int option;
  victim_level : string option; (* the victim's declared level (Mixed) *)
  classes : string list;        (* candidate phenomena of the cycle (Mixed) *)
}

type summary = {
  mode : mode;
  criterion : criterion;
  nodes : int;           (* graph size when finalize began *)
  edges : int;
  edges_wr : int;
  edges_ww : int;
  edges_rw : int;
  cycles : int;
  dooms : int;
  misses : int;
  tolerated : int;       (* cycles harming no member (Mixed) *)
  harmed : int;          (* forbidden-for-victim attributions at finalize *)
  prune_passes : int;
  pruned_nodes : int;
  pruned_eras : int;
  serializable : bool;
  mixed_ok : bool;
  matrix : ((Level.t * P.t) * int) list;
  witness : int list option;
  violations : violation list;
}

(* {2 Per-key state} *)

(* Single-version: one era per write of the key, top (latest) first; the
   bottom era is the initial state, writer 0. *)
type era = { writer : int; mutable readers : int list }
type key_sv = { mutable eras : era list }

type pred_state = { mutable preaders : int list; mutable pwriters : int list }

(* Multiversion: last committed writer, committed writers newest-first
   (the tail of {!History.Mv.version_order} reversed), readers per
   version, and the pending (uncommitted) writers. *)
type key_mv = {
  mutable lcw : int;
  mutable vorder_rev : int list;
  readers : (int, int list ref) Hashtbl.t;
  mutable pending : int list;
}

type status = Active | Committed | Aborted

type t = {
  mode : mode;
  family : family;
  criterion : criterion;
  batch : bool;
  buf_m : Mutex.t;                  (* guards [buf] only; taken after [m] *)
  mutable buf : Action.t list;      (* offered actions, reversed *)
  g : Graph.Incremental.t;
  m : Mutex.t;
  keys_sv : (string, key_sv) Hashtbl.t;
  preds : (string, pred_state) Hashtbl.t;
  keys_mv : (string, key_mv) Hashtbl.t;
  written : (int, string list ref) Hashtbl.t;
  wpreds_of : (int, string list ref) Hashtbl.t;
  preads_of : (int, string list ref) Hashtbl.t;
  status : (int, status) Hashtbl.t;
  doomed_tbl : (int, unit) Hashtbl.t;
  (* Mixed criterion: each transaction's declared level, the kinds each
     inserted edge carries (an edge pair can carry several — e.g. both
     ww and rw — and a kind can be predicate-borne), and the permitted
     anomaly × victim-level attribution built by the finalize replay. *)
  levels : (int, Level.t) Hashtbl.t;
  ekinds : (int * int, (kind * bool) list ref) Hashtbl.t;
  matrix : (Level.t * P.t, int) Hashtbl.t;
  mutable pending_edges : (int * int * kind * bool) list;
                                                   (* rejected, reversed *)
  mutable violations : violation list;             (* reversed, capped *)
  mutable edges_wr : int;
  mutable edges_ww : int;
  mutable edges_rw : int;
  mutable cycles : int;
  mutable dooms : int;
  mutable misses : int;
  mutable tolerated : int;
  mutable harmed : int;
  (* Era pruning (single-version families): every [prune_every] commits
     the settled bottom of each era stack is trimmed, committed
     predicate readers/writers are folded into per-predicate virtual
     nodes, and committed graph sources no structure references any
     more are retired. 0 disables pruning. *)
  prune_every : int;
  mutable commits_seen : int;
  mutable prune_passes : int;
  mutable pruned_nodes : int;
  mutable pruned_eras : int;
  mutable vnext : int;                         (* next virtual (negative) id *)
  vpreds : (string, int * int) Hashtbl.t;      (* pred -> (vreader, vwriter) *)
  on_edge : (src:int -> dst:int -> dep:string -> unit) option;
  on_cycle : (violation -> unit) option;
}

let max_stored_violations = 64

let create ?on_edge ?on_cycle ?(batch = false) ?(prune_every = 0)
    ?(criterion = Serializability) ~mode ~family () =
  {
    mode;
    family;
    criterion;
    batch;
    buf_m = Mutex.create ();
    buf = [];
    g = Graph.Incremental.create ();
    m = Mutex.create ();
    keys_sv = Hashtbl.create 64;
    preds = Hashtbl.create 8;
    keys_mv = Hashtbl.create 64;
    written = Hashtbl.create 64;
    wpreds_of = Hashtbl.create 16;
    preads_of = Hashtbl.create 16;
    status = Hashtbl.create 64;
    doomed_tbl = Hashtbl.create 8;
    levels = Hashtbl.create 64;
    ekinds = Hashtbl.create 256;
    matrix = Hashtbl.create 16;
    pending_edges = [];
    violations = [];
    edges_wr = 0;
    edges_ww = 0;
    edges_rw = 0;
    cycles = 0;
    dooms = 0;
    misses = 0;
    tolerated = 0;
    harmed = 0;
    prune_every;
    commits_seen = 0;
    prune_passes = 0;
    pruned_nodes = 0;
    pruned_eras = 0;
    vnext = -1;
    vpreds = Hashtbl.create 8;
    on_edge;
    on_cycle;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let status_of t n = Option.value ~default:Active (Hashtbl.find_opt t.status n)
let is_active t n = n <> 0 && status_of t n = Active

(* {2 The mixed criterion}

   Levels are per transaction; an untagged transaction defaults to
   SERIALIZABLE, which forbids everything — exactly the single-level
   behaviour. *)

let note_level t ~tid ~level =
  locked t (fun () -> Hashtbl.replace t.levels tid level)

let level_of t n =
  Option.value ~default:Level.Serializable (Hashtbl.find_opt t.levels n)

(* Kinds carried by an inserted edge pair, recorded only under [Mixed]:
   the same pair can carry several (a re-written key yields both ww and
   rw), and an rw can be item- or predicate-borne — the P2 / P3
   distinction. Entries are swept with source retirement; a stale kind
   only widens a later cycle's candidate set, which errs toward
   tolerating, never toward a spurious doom of a weak transaction. *)
let note_kind t src dst dep pred =
  if t.criterion = Mixed then
    match Hashtbl.find_opt t.ekinds (src, dst) with
    | Some l -> if not (List.mem (dep, pred) !l) then l := (dep, pred) :: !l
    | None -> Hashtbl.replace t.ekinds (src, dst) (ref [ (dep, pred) ])

(* The Table-4 phenomena a rejected cycle could exhibit, from its edges'
   kind sets in cyclic order (the rejected closing edge last). Every
   kind selection names a real cycle of the multigraph, so candidates
   are the union over selections: all-ww is Degree-1 write interference
   (P0); a selection avoiding rw but crossing a wr is circular
   information flow (P1); any rw makes it an antidependency cycle — P3
   when a predicate read is involved, P2 for an item read — with the
   short shapes the paper names refined further: rw+ww two-cycles are
   lost updates (P4), rw+wr read skew (A5A), rw+rw — or two cyclically
   adjacent rw in a longer cycle, the SI dangerous structure — write
   skew (A5B). An edge with no recorded kinds (pruned away, or through a
   virtual predicate node) counts as any kind. *)
let classify t cycle ~dep ~pred =
  let wild = [ (Wr, false); (Ww, false); (Rw, false); (Rw, true) ] in
  let rec graph_pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: graph_pairs rest
    | _ -> []
  in
  let kinds (a, b) =
    if a < 0 || b < 0 then wild
    else
      match Hashtbl.find_opt t.ekinds (a, b) with
      | Some l -> !l
      | None -> wild
  in
  let sets = List.map kinds (graph_pairs cycle) @ [ [ (dep, pred) ] ] in
  let has k set = List.exists (fun (kk, _) -> kk = k) set in
  let item_rw set = List.mem (Rw, false) set in
  let pred_rw set = List.mem (Rw, true) set in
  let cands = ref [] in
  let add p = if not (List.mem p !cands) then cands := p :: !cands in
  if List.for_all (has Ww) sets then add P.P0;
  if
    List.for_all (fun s -> has Wr s || has Ww s) sets
    && List.exists (has Wr) sets
  then add P.P1;
  if List.exists (has Rw) sets then begin
    if List.exists pred_rw sets then add P.P3;
    if List.exists item_rw sets then add P.P2;
    match sets with
    | [ e1; e2 ] ->
      if has Rw e1 && has Rw e2 then add P.A5B;
      if (item_rw e1 && has Ww e2) || (item_rw e2 && has Ww e1) then add P.P4;
      if (item_rw e1 && has Wr e2) || (item_rw e2 && has Wr e1) then add P.A5A
    | _ ->
      let arr = Array.of_list sets in
      let n = Array.length arr in
      let adjacent_rw = ref false in
      for i = 0 to n - 1 do
        if has Rw arr.(i) && has Rw arr.((i + 1) mod n) then
          adjacent_rw := true
      done;
      if !adjacent_rw then add P.A5B
  end;
  List.rev !cands

(* A member is harmed when the cycle cannot be explained by any
   phenomenon its level permits. The quantifier is the permissive one —
   doom only when every candidate is forbidden — so an SI transaction in
   a write-skew two-cycle is left alone (A5B is Possible under SI even
   though P2 is not) while a SERIALIZABLE member, forbidding every
   phenomenon, is doomed for any cycle: full serializability is the
   SERIALIZABLE-victim special case. *)
let harmed t candidates n =
  n > 0
  && candidates <> []
  && List.for_all
       (fun p -> Spec.table4 (level_of t n) p = Spec.Not_possible)
       candidates

(* {2 Edge offers}

   Every dependency the rules derive goes through [offer]: self-edges,
   edges through the virtual initial transaction 0 and edges touching an
   already-aborted transaction are dropped; the rest are inserted unless
   they would close a cycle. A rejected edge is remembered for the
   finalize replay, and in [Enforce] mode dooms [actor] if it is still
   active (it always sits on the cycle: every rule emits edges with the
   acting transaction as one endpoint), else the youngest active cycle
   member, else counts as a miss.

   Under [Mixed] the doom is victim-relative: the cycle is classified
   and a harmed member is preferred — the actor if harmed, else the
   youngest doomable harmed member. When every harmed member has
   already committed (the closing edge arrived behind its back, so the
   harm is otherwise unpreventable), the youngest active cycle member
   is doomed in its stead: a defensive abort protecting the committed
   victim, the way SSI aborts a benign pivot. A cycle harming nobody
   is tolerated: nothing is doomed, but the closing edge still goes to
   the stash so the finalize replay can attribute it on the committed
   projection. *)
let offer ?actor ?(pred = false) ~dep t src dst =
  if
    src <> dst && src <> 0 && dst <> 0
    && status_of t src <> Aborted
    && status_of t dst <> Aborted
  then
    match Graph.Incremental.add_edge t.g src dst with
    | `Exists -> note_kind t src dst dep pred
    | `Ok ->
      note_kind t src dst dep pred;
      (match dep with
      | Wr -> t.edges_wr <- t.edges_wr + 1
      | Ww -> t.edges_ww <- t.edges_ww + 1
      | Rw -> t.edges_rw <- t.edges_rw + 1);
      (match t.on_edge with
      | Some f -> f ~src ~dst ~dep:(kind_name dep)
      | None -> ())
    | `Cycle cycle ->
      t.cycles <- t.cycles + 1;
      t.pending_edges <- (src, dst, dep, pred) :: t.pending_edges;
      let candidates =
        if t.criterion = Mixed then classify t cycle ~dep ~pred else []
      in
      let harmed_members =
        if t.criterion = Mixed then List.filter (harmed t candidates) cycle
        else []
      in
      if t.criterion = Mixed && harmed_members = [] then
        t.tolerated <- t.tolerated + 1;
      let victim =
        if t.mode <> Enforce then None
        else begin
          let doomable n = is_active t n && not (Hashtbl.mem t.doomed_tbl n) in
          let youngest_doomable among =
            List.fold_left
              (fun acc n ->
                if doomable n then
                  match acc with Some m when m >= n -> acc | _ -> Some n
                else acc)
              None among
          in
          let eligible =
            match t.criterion with
            | Serializability -> cycle
            | Mixed -> harmed_members
          in
          if t.criterion = Mixed && eligible = [] then None
          else begin
            let v =
              match actor with
              | Some a when doomable a && List.mem a eligible -> Some a
              | Some a
                when doomable a && t.criterion = Serializability ->
                Some a
              | _ -> (
                match youngest_doomable eligible with
                | Some _ as v -> v
                | None when t.criterion = Mixed ->
                  (* Every harmed member already committed: defensive
                     abort of a live member on its behalf. *)
                  (match actor with
                  | Some a when doomable a -> Some a
                  | _ -> youngest_doomable cycle)
                | None -> None)
            in
            (match v with
            | Some a ->
              Hashtbl.replace t.doomed_tbl a ();
              t.dooms <- t.dooms + 1
            | None -> t.misses <- t.misses + 1);
            v
          end
        end
      in
      let victim_level =
        if t.criterion <> Mixed then None
        else
          (* The protected party: the doomed member when it is itself
             harmed, else the harmed member a defensive abort defends. *)
          match (victim, harmed_members) with
          | Some d, hs when hs = [] || List.mem d hs ->
            Some (Level.slug (level_of t d))
          | _, m :: _ -> Some (Level.slug (level_of t m))
          | Some d, [] -> Some (Level.slug (level_of t d))
          | None, [] -> None
      in
      let v =
        {
          cycle;
          dep = kind_name dep;
          src;
          dst;
          doomed = victim;
          victim_level;
          classes = List.map P.name candidates;
        }
      in
      if t.cycles <= max_stored_violations then t.violations <- v :: t.violations;
      (match t.on_cycle with Some f -> f v | None -> ())

let note_in tbl tid v =
  match Hashtbl.find_opt tbl tid with
  | Some l -> if not (List.mem v !l) then l := v :: !l
  | None -> Hashtbl.replace tbl tid (ref [ v ])

let noted tbl tid =
  match Hashtbl.find_opt tbl tid with Some l -> !l | None -> []

(* {2 Single-version rules} *)

let key_sv t k =
  match Hashtbl.find_opt t.keys_sv k with
  | Some s -> s
  | None ->
    let s = { eras = [ { writer = 0; readers = [] } ] } in
    Hashtbl.replace t.keys_sv k s;
    s

let pred_state t p =
  match Hashtbl.find_opt t.preds p with
  | Some s -> s
  | None ->
    let s = { preaders = []; pwriters = [] } in
    Hashtbl.replace t.preds p s;
    s

let add_reader (era : era) r =
  if not (List.mem r era.readers) then era.readers <- r :: era.readers

(* The era directly above (written after) [era], if any; [eras] is
   top-first. *)
let era_above eras (era : era) =
  let rec go = function
    | (a : era) :: (b :: _ as rest) -> if b == era then Some a else go rest
    | _ -> None
  in
  go eras

let sv_read t tid k rver =
  let s = key_sv t k in
  let era =
    match rver with
    | Some v when v <> tid -> (
      (* an annotated (snapshot) read of a buried version joins that
         version's era and antidepends on the writer above it *)
      match List.find_opt (fun e -> e.writer = v) s.eras with
      | Some e -> e
      | None -> List.hd s.eras)
    | _ -> List.hd s.eras
  in
  offer ~actor:tid ~dep:Wr t era.writer tid;
  (match era_above s.eras era with
  | Some a -> offer ~actor:tid ~dep:Rw t tid a.writer
  | None -> ());
  add_reader era tid

let sv_write t tid k wpreds =
  let s = key_sv t k in
  (match s.eras with
  | top :: _ when top.writer = tid ->
    (* re-write: the era's readers saw the earlier value, so their reads
       precede this write — a genuine antidependency *)
    List.iter (fun r -> offer ~actor:tid ~dep:Rw t r tid) top.readers
  | top :: _ ->
    offer ~actor:tid ~dep:Ww t top.writer tid;
    List.iter (fun r -> offer ~actor:tid ~dep:Rw t r tid) top.readers;
    s.eras <- { writer = tid; readers = [] } :: s.eras;
    note_in t.written tid k
  | [] -> assert false);
  List.iter
    (fun p ->
      let ps = pred_state t p in
      List.iter
        (fun r -> offer ~actor:tid ~pred:true ~dep:Rw t r tid)
        ps.preaders;
      if not (List.mem tid ps.pwriters) then ps.pwriters <- tid :: ps.pwriters;
      note_in t.wpreds_of tid p)
    wpreds

let sv_pred_read t tid pname pkeys =
  List.iter
    (fun k ->
      let s = key_sv t k in
      let top = List.hd s.eras in
      offer ~actor:tid ~dep:Wr t top.writer tid;
      add_reader top tid)
    pkeys;
  let ps = pred_state t pname in
  List.iter (fun w -> offer ~actor:tid ~dep:Wr t w tid) ps.pwriters;
  if not (List.mem tid ps.preaders) then ps.preaders <- tid :: ps.preaders;
  note_in t.preads_of tid pname

(* Purging an aborted transaction's eras: each of its eras merges into
   the era below — the below writer's value is what the merged readers
   (and, with the era gone, the below era's own readers' successor
   edges) now relate to. The re-wired edges are exactly the surviving
   projection's dependencies: wr(below.writer -> r) because the abort's
   undo restored below's value, and rw(r -> above.writer) /
   ww(below.writer -> above.writer) because [above] is now the next
   surviving write. *)
let sv_purge t tid =
  List.iter
    (fun k ->
      let s = key_sv t k in
      let rec go ~above = function
        | [] -> []
        | era :: rest when era.writer = tid ->
          let rest' = go ~above rest in
          (match rest' with
          | below :: _ ->
            List.iter
              (fun r ->
                offer ~dep:Wr t below.writer r;
                add_reader below r)
              era.readers;
            (match above with
            | Some (a : era) ->
              offer ~dep:Ww t below.writer a.writer;
              List.iter (fun r -> offer ~dep:Rw t r a.writer) below.readers
            | None -> ())
          | [] -> ());
          rest'
        | era :: rest -> era :: go ~above:(Some era) rest
      in
      s.eras <- go ~above:None s.eras)
    (noted t.written tid);
  List.iter
    (fun p ->
      let ps = pred_state t p in
      ps.pwriters <- List.filter (fun w -> w <> tid) ps.pwriters)
    (noted t.wpreds_of tid);
  List.iter
    (fun p ->
      let ps = pred_state t p in
      ps.preaders <- List.filter (fun r -> r <> tid) ps.preaders)
    (noted t.preads_of tid);
  Hashtbl.remove t.written tid;
  Hashtbl.remove t.wpreds_of tid;
  Hashtbl.remove t.preads_of tid

(* {2 Era pruning}

   An exact verdict does not require the whole graph: a committed
   transaction that (a) has no in-edges and (b) is named by no structure
   a future rule could read a tid from — era stacks, predicate lists,
   the per-transaction tables, the pending (rejected) edges — can never
   again gain an in-edge, so no cycle can pass through it, and its node
   can be dropped without changing any future insertion's outcome
   (closure-preserving, like the abort purge). Three steps make such
   sources appear, run every [prune_every] commits:

   - Era trimming: drop a key's bottom era once both its writer and the
     writer directly above are committed (or the initial 0). A committed
     writer is never abort-purged, so the dropped era can never be
     needed as a purge's below-neighbour. A later snapshot read
     annotated with a trimmed version falls back to the top era —
     exactly the fallback already taken for versions predating the
     certifier — which only arises for long-running read-only
     transactions (none in the stress mixes).

   - Predicate folding: the flat predicate lists mean every committed
     past reader r would get an rw edge to every future matching
     writer. That biclique is compressed exactly through a per-predicate
     virtual node: r is linked r -> VR once and replaced by VR in the
     list, so the future edges VR -> w complete the same paths; dually
     committed writers fold into w -> VW with VW emitting the future
     wr edges. Virtual ids are negative, committed, and never retired,
     so cycles through them are genuine committed-projection cycles.

   - Retirement: with the structures thinned, committed unreferenced
     graph sources are removed, cascading along their out-edges.

   The multiversion family prunes on a different trigger: the certifier
   cannot time out versions itself (it does not timestamp snapshots, and
   an active transaction that has not acted yet may hold an arbitrarily
   old one), so it waits for the engine's vacuum to declare versions
   buried — {!mv_trim}, fed by {!Core.Engine.set_prune_hook} with the
   exact (key, writer) pairs pruned at the oldest-active-snapshot
   horizon. Trimmed writers then fall to the same source retirement. *)

let committed_or_initial t n = n = 0 || status_of t n = Committed

let trim_eras t =
  Hashtbl.iter
    (fun _ (s : key_sv) ->
      let rec drop = function
        | (bottom : era) :: (above :: _ as rest)
          when committed_or_initial t bottom.writer
               && committed_or_initial t above.writer ->
          t.pruned_eras <- t.pruned_eras + 1;
          drop rest
        | rest -> rest
      in
      let bottom_first = List.rev s.eras in
      let trimmed = drop bottom_first in
      if trimmed != bottom_first then s.eras <- List.rev trimmed)
    t.keys_sv

let virtual_pair t p =
  match Hashtbl.find_opt t.vpreds p with
  | Some pair -> pair
  | None ->
    let vr = t.vnext and vw = t.vnext - 1 in
    t.vnext <- t.vnext - 2;
    Hashtbl.replace t.status vr Committed;
    Hashtbl.replace t.status vw Committed;
    Hashtbl.replace t.vpreds p (vr, vw);
    (vr, vw)

let fold_preds t =
  Hashtbl.iter
    (fun p ps ->
      let live n = n > 0 && status_of t n <> Committed in
      let folded_r = List.filter (fun r -> r > 0 && status_of t r = Committed) ps.preaders in
      let folded_w = List.filter (fun w -> w > 0 && status_of t w = Committed) ps.pwriters in
      if folded_r <> [] then begin
        let vr, _ = virtual_pair t p in
        List.iter (fun r -> offer ~pred:true ~dep:Rw t r vr) folded_r;
        ps.preaders <- vr :: List.filter live ps.preaders
      end;
      if folded_w <> [] then begin
        let _, vw = virtual_pair t p in
        List.iter (fun w -> offer ~dep:Wr t w vw) folded_w;
        ps.pwriters <- vw :: List.filter live ps.pwriters
      end)
    t.preds

(* Rejected closing edges are held for the finalize replay, but holding
   them marks both endpoints referenced and so blocks source retirement
   behind every transient cycle. Most rejections are transient: the
   cycle ran through an optimistic edge of a still-active transaction
   that later aborted (taking its edges with it). Retry the stash each
   prune pass: an edge with an aborted endpoint is outside the committed
   projection and can go; an edge between two committed survivors that
   now inserts cleanly is in the graph for good — the stash entry is
   redundant. Only edges that still close a cycle (or touch an active
   endpoint) are held. Entries stay newest-first, so re-offers across
   passes still happen in arrival order, as the finalize replay
   requires. *)
let retry_pending t =
  t.pending_edges <-
    List.fold_left
      (fun acc ((src, dst, dep, pred) as e) ->
        match (status_of t src, status_of t dst) with
        | Aborted, _ | _, Aborted -> acc
        | Committed, Committed -> (
          match Graph.Incremental.add_edge t.g src dst with
          | `Ok | `Exists ->
            note_kind t src dst dep pred;
            acc
          | `Cycle _ -> e :: acc)
        | _ -> e :: acc)
      []
      (List.rev t.pending_edges)

let retire_sources t =
  let referenced = Hashtbl.create 256 in
  let mark n = Hashtbl.replace referenced n () in
  Hashtbl.iter
    (fun _ (s : key_sv) ->
      List.iter
        (fun (e : era) ->
          mark e.writer;
          List.iter mark e.readers)
        s.eras)
    t.keys_sv;
  Hashtbl.iter
    (fun _ ps ->
      List.iter mark ps.preaders;
      List.iter mark ps.pwriters)
    t.preds;
  Hashtbl.iter
    (fun _ (s : key_mv) ->
      mark s.lcw;
      List.iter mark s.vorder_rev;
      List.iter mark s.pending;
      Hashtbl.iter
        (fun v l ->
          mark v;
          List.iter mark !l)
        s.readers)
    t.keys_mv;
  List.iter
    (fun (src, dst, _, _) ->
      mark src;
      mark dst)
    t.pending_edges;
  Hashtbl.iter (fun tid _ -> mark tid) t.written;
  Hashtbl.iter (fun tid _ -> mark tid) t.wpreds_of;
  Hashtbl.iter (fun tid _ -> mark tid) t.preads_of;
  let retirable n =
    n > 0
    && (match Hashtbl.find_opt t.status n with
       | Some Committed -> true
       | _ -> false)
    && (not (Hashtbl.mem referenced n))
    && Graph.Incremental.preds t.g n = []
  in
  (* An Aborted entry only exists to deaden later offers that touch the
     transaction (a stale reader-list member, a held closing edge). Once
     no table or held edge names it, no rule can offer such an edge
     again, so the tombstone is dead weight. *)
  let dead =
    Hashtbl.fold
      (fun n st acc ->
        if n > 0 && st = Aborted && not (Hashtbl.mem referenced n) then n :: acc
        else acc)
      t.status []
  in
  List.iter
    (fun n ->
      Hashtbl.remove t.status n;
      Hashtbl.remove t.levels n)
    dead;
  let roots =
    Hashtbl.fold (fun n _ acc -> if retirable n then n :: acc else acc) t.status []
  in
  (* Removing a source exposes its successors; cascade within the pass. *)
  let rec go = function
    | [] -> ()
    | n :: rest when not (Hashtbl.mem t.status n) -> go rest
    | n :: rest ->
      let succs = Graph.Incremental.succs t.g n in
      Graph.Incremental.remove_node t.g n;
      Hashtbl.remove t.status n;
      Hashtbl.remove t.doomed_tbl n;
      Hashtbl.remove t.levels n;
      t.pruned_nodes <- t.pruned_nodes + 1;
      go (List.filter retirable succs @ rest)
  in
  go roots;
  (* Kind entries for edges no longer in the graph (abort purges, node
     retirement) are dead; sweeping them here bounds the table by the
     live edge set, the same cadence that bounds the graph itself. *)
  if t.criterion = Mixed then begin
    let dead =
      Hashtbl.fold
        (fun (a, b) _ acc ->
          if Graph.Incremental.mem_edge t.g a b then acc else (a, b) :: acc)
        t.ekinds []
    in
    List.iter (fun k -> Hashtbl.remove t.ekinds k) dead
  end

let maybe_prune t =
  if t.prune_every > 0 then begin
    t.commits_seen <- t.commits_seen + 1;
    if t.commits_seen mod t.prune_every = 0 then begin
      t.prune_passes <- t.prune_passes + 1;
      trim_eras t;
      fold_preds t;
      retry_pending t;
      retire_sources t
    end
  end

(* {2 Multiversion rules} *)

let key_mv t k =
  match Hashtbl.find_opt t.keys_mv k with
  | Some s -> s
  | None ->
    let s =
      { lcw = 0; vorder_rev = []; readers = Hashtbl.create 4; pending = [] }
    in
    Hashtbl.replace t.keys_mv k s;
    s

let mv_readers s v =
  match Hashtbl.find_opt s.readers v with Some l -> !l | None -> []

let mv_add_reader s v tid =
  match Hashtbl.find_opt s.readers v with
  | Some l -> if not (List.mem tid !l) then l := tid :: !l
  | None -> Hashtbl.replace s.readers v (ref [ tid ])

(* The committed version directly after [v] in commit order, if any. *)
let mv_succ s v =
  if v = s.lcw then None
  else if v = 0 then
    match List.rev s.vorder_rev with w :: _ -> Some w | [] -> None
  else
    let rec go = function
      | newer :: v' :: _ when v' = v -> Some newer
      | _ :: rest -> go rest
      | [] -> None
    in
    go s.vorder_rev

let mv_read t tid k rver =
  let s = key_mv t k in
  let v =
    match rver with
    | Some v -> v
    | None -> if List.mem tid s.pending then tid else s.lcw
  in
  if v <> tid then begin
    offer ~actor:tid ~dep:Wr t v tid;
    mv_add_reader s v tid;
    (match mv_succ s v with
    | Some w -> offer ~actor:tid ~dep:Rw t tid w
    | None -> ());
    (* optimistic: a pending writer's version will follow [v] in commit
       order if it commits — unless [v] itself is pending, in which case
       their relative order is unknowable yet *)
    if not (List.mem v s.pending) then
      List.iter
        (fun w -> if w <> v then offer ~actor:tid ~dep:Rw t tid w)
        s.pending
  end

let mv_write t tid k =
  let s = key_mv t k in
  if not (List.mem tid s.pending) then begin
    s.pending <- tid :: s.pending;
    note_in t.written tid k
  end;
  (* optimistic mirrors of the commit-time edges: if tid commits, its
     version follows the currently last committed one *)
  offer ~actor:tid ~dep:Ww t s.lcw tid;
  List.iter (fun r -> offer ~actor:tid ~dep:Rw t r tid) (mv_readers s s.lcw)

let mv_commit t tid =
  List.iter
    (fun k ->
      let s = key_mv t k in
      s.pending <- List.filter (fun w -> w <> tid) s.pending;
      offer ~dep:Ww t s.lcw tid;
      List.iter (fun r -> offer ~dep:Rw t r tid) (mv_readers s s.lcw);
      s.vorder_rev <- tid :: s.vorder_rev;
      s.lcw <- tid)
    (noted t.written tid)

let mv_purge t tid =
  List.iter
    (fun k ->
      let s = key_mv t k in
      s.pending <- List.filter (fun w -> w <> tid) s.pending)
    (noted t.written tid);
  Hashtbl.remove t.written tid

(* {2 The feed} *)

let seen t tid =
  if not (Hashtbl.mem t.status tid) then Hashtbl.replace t.status tid Active

let observe_locked t (a : Action.t) =
  let tid = Action.txn a in
  seen t tid;
  match t.family with
  | `Locking | `Timestamp -> (
    match a with
    | Action.Read r -> sv_read t tid r.rk r.rver
    | Action.Write w -> sv_write t tid w.wk w.wpreds
    | Action.Pred_read p -> sv_pred_read t tid p.pname p.pkeys
    | Action.Commit _ ->
      Hashtbl.replace t.status tid Committed;
      (* a committed transaction is never purged, so its per-txn tables
         are dead weight from here on *)
      Hashtbl.remove t.written tid;
      Hashtbl.remove t.wpreds_of tid;
      Hashtbl.remove t.preads_of tid;
      maybe_prune t
    | Action.Abort _ ->
      Hashtbl.replace t.status tid Aborted;
      Hashtbl.remove t.doomed_tbl tid;
      sv_purge t tid;
      Graph.Incremental.remove_node t.g tid)
  | `Mv -> (
    match a with
    | Action.Read r -> mv_read t tid r.rk r.rver
    | Action.Write w -> mv_write t tid w.wk
    | Action.Pred_read _ -> () (* the MVSG has no predicate vocabulary *)
    | Action.Commit _ ->
      Hashtbl.replace t.status tid Committed;
      mv_commit t tid;
      (* committed writers are never purged, so the write-set note is
         dead weight from here on (and would pin the node as referenced
         forever, defeating retirement) *)
      Hashtbl.remove t.written tid;
      maybe_prune t
    | Action.Abort _ ->
      Hashtbl.replace t.status tid Aborted;
      Hashtbl.remove t.doomed_tbl tid;
      mv_purge t tid;
      Graph.Incremental.remove_node t.g tid)

(* Batched mode trades the heavy graph work out of the caller's critical
   section (the engine trace lock) for a two-mutex dance: [observe] only
   appends under the tiny [buf_m] — appends arrive in history order
   because the engine serializes its trace hook — and the graph catches
   up on the next [flush]/[doomed]/[finalize]. Lock order is [m] then
   [buf_m]: a flusher takes the graph lock first, so concurrent flushers
   drain whole prefixes in order and the replayed sequence equals the
   recorded history. *)
let drain_locked t =
  Mutex.lock t.buf_m;
  let pending = List.rev t.buf in
  t.buf <- [];
  Mutex.unlock t.buf_m;
  List.iter (observe_locked t) pending

let observe t _pos a =
  if t.batch then begin
    Mutex.lock t.buf_m;
    t.buf <- a :: t.buf;
    Mutex.unlock t.buf_m
  end
  else locked t (fun () -> observe_locked t a)

let flush t = if t.batch then locked t (fun () -> drain_locked t)

(* Vacuum retirement (the engine's prune hook, multiversion family): the
   engine buried these (key, writer) versions at the oldest-active-
   snapshot horizon, so no active or future snapshot can read them. Drop
   them from the version order and forget their reader tables — every rw
   edge a reader of a buried version will ever need was offered when the
   read was observed (to the version's then-successor and the pending
   writers), and surviving readers' snapshots sit at or above the
   horizon, reading surviving versions. The buffer is drained first so
   the buried writers' own Commits have reached the tables. With the
   references gone, the commit-cadence [maybe_prune] source retirement
   collects the writers themselves. *)
let mv_trim t ~buried =
  locked t (fun () ->
      if t.batch then drain_locked t;
      List.iter
        (fun (k, w) ->
          match Hashtbl.find_opt t.keys_mv k with
          | None -> ()
          | Some s ->
            if List.mem w s.vorder_rev then begin
              s.vorder_rev <- List.filter (fun x -> x <> w) s.vorder_rev;
              t.pruned_eras <- t.pruned_eras + 1
            end;
            Hashtbl.remove s.readers w)
        buried)

let doomed t tid =
  locked t (fun () ->
      if t.batch then drain_locked t;
      Hashtbl.mem t.doomed_tbl tid)

(* {2 Live gauges}

   A non-destructive progress reading for telemetry: unlike {!doomed}
   and {!finalize} it does *not* drain the batch buffer — the queue
   depth is the gauge — so a scrape never does graph work on behalf of
   the workers. Two short critical sections ([buf_m], then [m]), never
   nested, so a scrape cannot participate in a lock cycle. *)
type stats = {
  s_nodes : int;
  s_edges : int;
  s_queue : int;          (* batched actions not yet in the graph *)
  s_pending : int;        (* rejected closing edges held for finalize *)
  s_edges_wr : int;
  s_edges_ww : int;
  s_edges_rw : int;
  s_cycles : int;
  s_dooms : int;
  s_misses : int;
  s_tolerated : int;      (* cycles harming no member (Mixed) *)
  s_prune_passes : int;
  s_pruned_nodes : int;   (* committed nodes retired from the graph *)
  s_pruned_eras : int;    (* settled era-stack entries trimmed *)
}

let stats t =
  let queue =
    if not t.batch then 0
    else begin
      Mutex.lock t.buf_m;
      let n = List.length t.buf in
      Mutex.unlock t.buf_m;
      n
    end
  in
  locked t (fun () ->
      {
        s_nodes = Graph.Incremental.node_count t.g;
        s_edges = Graph.Incremental.edge_count t.g;
        s_queue = queue;
        s_pending = List.length t.pending_edges;
        s_edges_wr = t.edges_wr;
        s_edges_ww = t.edges_ww;
        s_edges_rw = t.edges_rw;
        s_cycles = t.cycles;
        s_dooms = t.dooms;
        s_misses = t.misses;
        s_tolerated = t.tolerated;
        s_prune_passes = t.prune_passes;
        s_pruned_nodes = t.pruned_nodes;
        s_pruned_eras = t.pruned_eras;
      })

(* {2 The final verdict}

   Purge the transactions that never terminated (they are outside the
   committed projection), then re-offer the rejected edges whose
   endpoints both committed, in arrival order. The maintained graph is
   closure-equal to the offline dependency graph of the committed
   projection, so the first re-rejection witnesses a genuine cycle —
   and if every re-offer lands, the projection is serializable.

   Serializability stops at the first witness (the exact-verdict
   contract: one committed-projection cycle falsifies it). Mixed keeps
   replaying: every re-rejection is a committed-projection cycle whose
   candidates are attributed to each committed member — a forbidden
   candidate set is harm, a permitted one a matrix cell — because a
   tolerated cycle's closing edge was deliberately left out of the
   graph during the run, and a later cycle needing that edge is only
   discoverable here. [mixed_ok] is this replay finding no harm. *)
let finalize t =
  locked t (fun () ->
      if t.batch then drain_locked t;
      let stragglers =
        Hashtbl.fold
          (fun n st acc -> if st = Active then n :: acc else acc)
          t.status []
      in
      let nodes = Graph.Incremental.node_count t.g in
      let edges = Graph.Incremental.edge_count t.g in
      List.iter
        (fun n ->
          Hashtbl.replace t.status n Aborted;
          (match t.family with
          | `Locking | `Timestamp -> sv_purge t n
          | `Mv -> mv_purge t n);
          Graph.Incremental.remove_node t.g n)
        (List.sort compare stragglers);
      let witness = ref None in
      List.iter
        (fun (src, dst, dep, pred) ->
          let both_committed =
            status_of t src = Committed && status_of t dst = Committed
          in
          match t.criterion with
          | Serializability ->
            if !witness = None && both_committed then (
              match Graph.Incremental.add_edge t.g src dst with
              | `Ok | `Exists -> ()
              | `Cycle c -> witness := Some c)
          | Mixed ->
            if both_committed then (
              match Graph.Incremental.add_edge t.g src dst with
              | `Ok | `Exists -> note_kind t src dst dep pred
              | `Cycle c ->
                if !witness = None then witness := Some c;
                let candidates = classify t c ~dep ~pred in
                List.iter
                  (fun m ->
                    if m > 0 && status_of t m = Committed then
                      if harmed t candidates m then
                        t.harmed <- t.harmed + 1
                      else
                        let l = level_of t m in
                        List.iter
                          (fun p ->
                            if
                              Spec.table4 l p <> Spec.Not_possible
                            then
                              let key = (l, p) in
                              Hashtbl.replace t.matrix key
                                (1
                                + Option.value ~default:0
                                    (Hashtbl.find_opt t.matrix key)))
                          candidates)
                  c))
        (List.rev t.pending_edges);
      let matrix =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.matrix []
        |> List.sort (fun ((l1, p1), _) ((l2, p2), _) ->
               match compare (Level.slug l1) (Level.slug l2) with
               | 0 -> compare (P.name p1) (P.name p2)
               | c -> c)
      in
      {
        mode = t.mode;
        criterion = t.criterion;
        nodes;
        edges;
        edges_wr = t.edges_wr;
        edges_ww = t.edges_ww;
        edges_rw = t.edges_rw;
        cycles = t.cycles;
        dooms = t.dooms;
        misses = t.misses;
        tolerated = t.tolerated;
        harmed = t.harmed;
        prune_passes = t.prune_passes;
        pruned_nodes = t.pruned_nodes;
        pruned_eras = t.pruned_eras;
        serializable = !witness = None;
        mixed_ok =
          (match t.criterion with
          | Serializability -> !witness = None
          | Mixed -> t.harmed = 0);
        matrix;
        witness = !witness;
        violations = List.rev t.violations;
      })

let replay ?(mode = Observe) ?family ?(criterion = Serializability)
    ?(levels = []) h =
  let family =
    match family with
    | Some f -> f
    | None -> if History.Mv.is_mv h then `Mv else `Locking
  in
  let t = create ~mode ~family ~criterion () in
  List.iter (fun (tid, level) -> note_level t ~tid ~level) levels;
  List.iteri (fun i a -> observe t i a) h;
  finalize t

(* {2 Printing} *)

let pp_mode ppf = function
  | Observe -> Fmt.string ppf "observe"
  | Enforce -> Fmt.string ppf "enforce"

let pp_cycle ppf c =
  Fmt.(list ~sep:(any " -> ") (fmt "T%d")) ppf (c @ [ List.hd c ])

let pp_violation ppf v =
  Fmt.pf ppf "%s T%d -> T%d closes %a%a%a%a" v.dep v.src v.dst pp_cycle
    v.cycle
    (fun ppf -> function
      | [] -> ()
      | cs -> Fmt.pf ppf " [%s]" (String.concat "|" cs))
    v.classes
    (fun ppf -> function
      | Some d -> Fmt.pf ppf " (doomed T%d)" d
      | None -> ())
    v.doomed
    (fun ppf -> function
      | Some l -> Fmt.pf ppf " (victim level %s)" l
      | None -> ())
    v.victim_level

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "certifier (%a%s): %d wr + %d ww + %d rw edges, %d cycle%s rejected, %d \
     doomed, %d missed%s%s; committed projection %s%s"
    pp_mode s.mode
    (match s.criterion with Serializability -> "" | Mixed -> ", mixed")
    s.edges_wr s.edges_ww s.edges_rw s.cycles
    (if s.cycles = 1 then "" else "s")
    s.dooms s.misses
    (match s.criterion with
    | Serializability -> ""
    | Mixed ->
      Fmt.str ", %d tolerated" s.tolerated)
    (if s.prune_passes = 0 then ""
     else
       Fmt.str ", %d node%s + %d era%s pruned over %d pass%s" s.pruned_nodes
         (if s.pruned_nodes = 1 then "" else "s")
         s.pruned_eras
         (if s.pruned_eras = 1 then "" else "s")
         s.prune_passes
         (if s.prune_passes = 1 then "" else "es"))
    (match s.witness with
    | None -> "serializable"
    | Some c -> Fmt.str "cyclic: %a" pp_cycle c)
    (match s.criterion with
    | Serializability -> ""
    | Mixed ->
      Fmt.str "; mixed criterion %s (%d harmed)"
        (if s.mixed_ok then "ok" else "violated")
        s.harmed)

let to_json (s : summary) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"mode":"%s","criterion":"%s","dep_edges":{"wr":%d,"ww":%d,"rw":%d},"graph":{"nodes":%d,"edges":%d},"cycles":%d,"dooms":%d,"misses":%d,"tolerated":%d,"harmed":%d,"prune":{"passes":%d,"nodes":%d,"eras":%d},"serializable":%b,"mixed_ok":%b|}
       (match s.mode with Observe -> "observe" | Enforce -> "enforce")
       (match s.criterion with
       | Serializability -> "serializability"
       | Mixed -> "mixed")
       s.edges_wr s.edges_ww s.edges_rw s.nodes s.edges s.cycles s.dooms
       s.misses s.tolerated s.harmed s.prune_passes s.pruned_nodes
       s.pruned_eras s.serializable s.mixed_ok);
  if s.criterion = Mixed then begin
    Buffer.add_string b ",\"matrix\":[";
    List.iteri
      (fun i ((l, p), n) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf {|{"level":"%s","anomaly":"%s","count":%d}|}
             (Level.slug l) (P.name p) n))
      s.matrix;
    Buffer.add_char b ']'
  end;
  (match s.witness with
  | Some c ->
    Buffer.add_string b ",\"witness\":[";
    List.iteri
      (fun i n ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int n))
      c;
    Buffer.add_char b ']'
  | None -> ());
  Buffer.add_string b ",\"violations\":[";
  List.iteri
    (fun i (v : violation) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"dep":"%s","src":%d,"dst":%d,"cycle":[%s]%s%s%s}|}
           v.dep v.src v.dst
           (String.concat "," (List.map string_of_int v.cycle))
           (match v.doomed with
           | Some d -> Printf.sprintf {|,"doomed":%d|} d
           | None -> "")
           (match v.victim_level with
           | Some l -> Printf.sprintf {|,"victim_level":"%s"|} l
           | None -> "")
           (if v.classes = [] then ""
            else
              Printf.sprintf {|,"classes":[%s]|}
                (String.concat ","
                   (List.map (Printf.sprintf "%S") v.classes)))))
    s.violations;
  Buffer.add_string b "]}";
  Buffer.contents b
