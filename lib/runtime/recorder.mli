(** The runtime's trace recorder.

    The action-level record of a parallel run is the engine's own trace:
    every step executes under the pool's execution latch, so the trace the
    engine accumulates *is* a linearization of what actually happened, and
    {!Pool.result.history} hands it to the oracle unchanged.

    What the engine cannot know is the attempt structure above it — which
    logical job each transaction id belonged to, how often it was
    restarted, on which worker, and how long each attempt took. The
    recorder journals exactly that, into per-worker striped buffers (one
    mutex per worker, so appends never contend) with a global atomic
    sequence number that gives the merged journal a total order. *)

type outcome = Committed | Aborted of Core.Engine.abort_reason

val pp_outcome : outcome Fmt.t

type entry = {
  seq : int;  (** global completion order *)
  job : int;  (** index of the logical job *)
  name : string;
  level : Isolation.Level.t;
  tid : History.Action.txn;  (** transaction id of this attempt *)
  attempt : int;  (** 1-based attempt number for the job *)
  worker : int;
  start_ns : int;
  finish_ns : int;
  outcome : outcome;
}

type t

val create :
  ?stripes:int -> ?spill_dir:string -> ?spill_threshold:int -> unit -> t
(** With [spill_dir] (created if missing), a stripe whose live buffer
    reaches [spill_threshold] entries (default 4096, min 64) is appended
    to a per-stripe file and emptied, bounding resident journal memory
    for out-of-core runs; {!iter_entries} streams the merge back. *)

val record :
  t ->
  job:int ->
  name:string ->
  level:Isolation.Level.t ->
  tid:History.Action.txn ->
  attempt:int ->
  worker:int ->
  start_ns:int ->
  finish_ns:int ->
  outcome ->
  unit

val entries : t -> entry list
(** The merged journal in completion order. Call after workers joined. *)

val iter_entries : t -> (entry -> unit) -> unit
(** Stream the merged journal in completion order without materializing
    it: a k-way merge over the per-stripe spill files and live tails,
    holding one entry per stripe in memory. Call after workers joined. *)

val spilled : t -> int
(** Entries written to spill files so far (0 without [spill_dir]). *)

val committed : t -> entry list
(** Entries whose attempt committed. *)
