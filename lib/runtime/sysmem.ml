(* Process memory readings, so the out-of-core pipeline's flat-memory
   claim is measured rather than asserted: peak RSS (VmHWM) and current
   RSS from /proc/self/status, plus the OCaml heap from Gc.quick_stat.
   On systems without procfs the RSS readings are 0 and consumers treat
   them as unavailable. *)

let proc_status_kb field =
  let path = "/proc/self/status" in
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let prefix = field ^ ":" in
    let rec scan () =
      match input_line ic with
      | line ->
        if String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then
          (* "VmHWM:     12345 kB" *)
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
          |> String.trim
          |> String.split_on_char ' '
          |> (function kb :: _ -> int_of_string_opt kb | [] -> None)
          |> Option.value ~default:0
        else scan ()
      | exception End_of_file -> 0
    in
    let v = scan () in
    close_in ic;
    v
  end

let vm_hwm_kb () = proc_status_kb "VmHWM"
let vm_rss_kb () = proc_status_kb "VmRSS"

(* Reset the kernel's peak-RSS watermark (write "5" to clear_refs), so a
   bench can measure each cell's own peak rather than the process
   lifetime maximum. Silently unavailable outside Linux. *)
let reset_peak () =
  match open_out "/proc/self/clear_refs" with
  | oc ->
    (try output_string oc "5" with Sys_error _ -> ());
    (try close_out oc with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let heap_words () =
  let s = Gc.quick_stat () in
  s.Gc.heap_words

type reading = { r_vm_hwm_kb : int; r_vm_rss_kb : int; r_heap_words : int }

let read () =
  {
    r_vm_hwm_kb = vm_hwm_kb ();
    r_vm_rss_kb = vm_rss_kb ();
    r_heap_words = heap_words ();
  }

(* A JSON object fragment, spliced into stress/chaos/bench rows. *)
let to_json r =
  Printf.sprintf {|{"vm_hwm_kb":%d,"vm_rss_kb":%d,"heap_words":%d}|}
    r.r_vm_hwm_kb r.r_vm_rss_kb r.r_heap_words

let pp ppf r =
  Fmt.pf ppf "peak rss %d kB, rss %d kB, heap %d words" r.r_vm_hwm_kb
    r.r_vm_rss_kb r.r_heap_words
