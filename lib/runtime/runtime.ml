(* Umbrella module of the [runtime] library: the multicore
   transaction-processing runtime. A Domain-based worker pool ({!Pool})
   drives the paper's engines under real concurrency; the run's recorded
   history is handed to the paper's detectors and serializability tests
   as a live correctness oracle ({!Oracle}); {!Metrics} measures what the
   hardware actually did. The deterministic [Sim] enumeration proves the
   theory on small scenarios exhaustively — the runtime samples it at
   scale on a live engine. *)

module Stripes = Stripes
module Backoff = Backoff
module Metrics = Metrics
module Sysmem = Sysmem
module Recorder = Recorder
module Certifier = Certifier
module Oracle = Oracle
module Pool = Pool
