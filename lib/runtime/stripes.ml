(* Striped synchronization: an array of mutexes indexed by key hash, and
   sharded counters whose increments land on per-domain atomic cells.
   Both exist to keep the worker pool off single points of contention. *)

type t = Mutex.t array

let create n = Array.init (max 1 n) (fun _ -> Mutex.create ())
let size = Array.length

(* The same key-to-stripe map the sharded store and the striped lock
   table use — one hash, so "hold the key's stripe" covers the key's
   store shard and lock bucket at once. *)
let stripe_of_key t k = Storage.Shard.of_key ~shards:(Array.length t) k

(* Acquire stripe [i], reporting whether the lock was contended: a failed
   [try_lock] means another worker holds the stripe right now, which is
   the signal the contention counters (and the [Stripe_wait] trace event)
   want — cheap, and exact enough for a ratio. *)
let acquire t i =
  let m = t.(i) in
  if Mutex.try_lock m then false
  else begin
    Mutex.lock m;
    true
  end

let release t i = Mutex.unlock t.(i)

let with_index t i f =
  let m = t.(((i mod Array.length t) + Array.length t) mod Array.length t) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let with_key t k f = with_index t (stripe_of_key t k) f

module Counter = struct
  type t = int Atomic.t array

  let create ?(stripes = 16) () =
    Array.init (max 1 stripes) (fun _ -> Atomic.make 0)

  let cell t =
    t.((Domain.self () :> int) mod Array.length t)

  let add t n = ignore (Atomic.fetch_and_add (cell t) n)
  let incr t = add t 1
  let sum t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t
end
