(* Capped exponential backoff with full jitter. One instance per worker;
   not thread-safe (each domain owns its own Random.State). *)

type config = { base_us : float; cap_us : float; multiplier : float }

let default = { base_us = 20.; cap_us = 2_000.; multiplier = 2. }

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable window_us : float;
  mutable count : int;
}

let create ?rng cfg =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 0x0ff5e7 |]
  in
  { cfg; rng; window_us = cfg.base_us; count = 0 }

let reset t = t.window_us <- t.cfg.base_us

let next_us t =
  let slice_us = Random.State.float t.rng t.window_us in
  t.count <- t.count + 1;
  t.window_us <- Float.min t.cfg.cap_us (t.window_us *. t.cfg.multiplier);
  slice_us

let wait t = Unix.sleepf (next_us t /. 1e6)

let waits t = t.count
