(* The Domain-parallel worker pool.

   Concurrency architecture, from the inside out:

   - One engine instance, guarded by one coarse execution latch
     (profiling note: the engines are single-threaded by design; striping
     the latch by key hash requires first striping the lock table and
     store, which is on the roadmap). Every Engine call happens inside
     [locked].

   - Workers never sleep while holding the latch. A step that comes back
     [Blocked] releases the latch and backs off with capped exponential
     jitter before retrying, so one transaction's lock wait costs only
     its own worker.

   - Deadlock handling mirrors the deterministic executor: a shared
     waits-for table is updated under the latch on every blocked step,
     and the youngest transaction of any cycle is aborted on the spot —
     possibly by the worker of another transaction in the cycle. The
     victim's worker observes the abort on its next step ([Finished])
     and restarts the job under a fresh transaction id.

   - Job dispatch is a lock-free ticket: Atomic.fetch_and_add over the
     job array (or the generator, for timed runs).

   Transaction ids are globally fresh (an atomic counter), so a retried
   job appears in the history as a new transaction and the recorded
   trace stays well-formed: an aborted attempt terminates with its own
   abort action and never acts again. *)

module Action = History.Action
module Level = Isolation.Level
module Engine = Core.Engine
module Program = Core.Program
module Digraph = History.Digraph

type job = {
  name : string;
  program : Program.t;
  level : Level.t;
  read_only : bool;
}

let job ?(name = "txn") ?(read_only = false) ~level program =
  { name; program; level; read_only }

type config = {
  workers : int;
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  family : [ `Locking | `Mv | `Timestamp ] option;
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  max_attempts : int;
  max_op_retries : int;
  think_us : float;
  backoff : Backoff.config;
  retry_backoff : Backoff.config;
  oracle_phenomena : Phenomena.Phenomenon.t list;
  seed : int;
  trace : Trace.Sink.t option;
}

(* Restarting a whole transaction is costlier than re-polling one lock,
   and a retry that comes back too soon meets the same contenders and
   deadlocks again (the 2PL upgrade storm), so the restart window starts
   wider than a lock wait and escalates well past a transaction's
   lifetime. *)
let default_retry_backoff =
  { Backoff.base_us = 200.; cap_us = 20_000.; multiplier = 2. }

let config ?(workers = 4) ?(initial = []) ?(predicates = []) ?family
    ?(first_updater_wins = false) ?(next_key_locking = false)
    ?(update_locks = false) ?(max_attempts = 64) ?(max_op_retries = 10_000)
    ?(think_us = 0.) ?(backoff = Backoff.default)
    ?(retry_backoff = default_retry_backoff)
    ?(oracle_phenomena = Phenomena.Phenomenon.all) ?(seed = 1) ?trace () =
  {
    workers = max 1 workers;
    initial;
    predicates;
    family;
    first_updater_wins;
    next_key_locking;
    update_locks;
    max_attempts = max 1 max_attempts;
    max_op_retries = max 1 max_op_retries;
    think_us = Float.max 0. think_us;
    backoff;
    retry_backoff;
    oracle_phenomena;
    seed;
    trace;
  }

type result = {
  history : History.t;
  final : (Action.key * Action.value) list;
  metrics : Metrics.snapshot;
  journal : Recorder.entry list;
  oracle : Oracle.t;
  lock_stats : Locking.Lock_table.stats option;
  events : Trace.Event.t list;
  events_dropped : int;
}

exception Stuck of string

type shared = {
  engine : Engine.t;
  latch : Mutex.t;
  waits : (Action.txn, Action.txn list) Hashtbl.t; (* guarded by latch *)
  next_tid : int Atomic.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
  sink : Trace.Sink.t option;
}

let emit sh ~tid kind =
  match sh.sink with None -> () | Some s -> Trace.Sink.emit s ~tid kind

let locked sh f =
  Mutex.lock sh.latch;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.latch) f

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Under the latch: record tid's waits-for edges and break any cycle by
   aborting its youngest (highest-id, hence most recently started)
   member. Returns [`Self_aborted] when the caller was the victim. *)
let note_blocked sh tid holders =
  Hashtbl.replace sh.waits tid holders;
  let g = Digraph.create () in
  Hashtbl.iter
    (fun t hs -> List.iter (fun h -> Digraph.add_edge g t h) hs)
    sh.waits;
  match Digraph.find_cycle g with
  | None -> `Wait
  | Some cycle ->
    let victim = List.fold_left max min_int cycle in
    Engine.abort_txn sh.engine victim;
    Hashtbl.remove sh.waits victim;
    Metrics.record_deadlock sh.metrics;
    emit sh ~tid:victim (Trace.Event.Deadlock_victim { cycle });
    if victim = tid then `Self_aborted else `Wait

(* One attempt at a job: begin a fresh transaction, drive every
   operation through the engine (waiting out blocks), and report the
   terminal status. *)
let run_attempt sh cfg ~rng ~bo ~widx ~jidx ~attempt job =
  let tid = Atomic.fetch_and_add sh.next_tid 1 in
  let ops =
    if Program.terminated job.program then job.program.Program.ops
    else job.program.Program.ops @ [ Program.Commit ]
  in
  let start_ns = now_ns () in
  let traced = sh.sink <> None in
  let waited_ns = ref 0 in
  emit sh ~tid
    (Trace.Event.Attempt_begin
       { job = jidx; name = job.name; attempt; level = Level.name job.level });
  locked sh (fun () ->
      Engine.begin_txn ~read_only:job.read_only sh.engine tid ~level:job.level);
  Backoff.reset bo;
  let rec exec = function
    | [] -> ()
    | op :: rest ->
      let op_str = if traced then Fmt.str "%a" Program.pp_op op else "" in
      let rec attempt_op tries =
        emit sh ~tid (Trace.Event.Step_begin { op = op_str });
        let outcome, hpos0, hpos1 =
          locked sh (fun () ->
              let h0 = Engine.trace_len sh.engine in
              let o =
                match Engine.step sh.engine tid op with
                | Engine.Progress ->
                  Hashtbl.remove sh.waits tid;
                  `Progress
                | Engine.Finished ->
                  (* terminated from outside: deadlock victim *)
                  Hashtbl.remove sh.waits tid;
                  `Finished
                | Engine.Blocked holders -> (
                  Metrics.record_block sh.metrics;
                  match note_blocked sh tid holders with
                  | `Wait -> `Wait holders
                  | `Self_aborted -> `Self_aborted holders)
              in
              (o, h0, Engine.trace_len sh.engine))
        in
        emit sh ~tid
          (Trace.Event.Step_end
             {
               op = op_str;
               outcome =
                 (match outcome with
                 | `Progress -> Trace.Event.Progress
                 | `Finished -> Trace.Event.Finished
                 | `Wait hs | `Self_aborted hs -> Trace.Event.Blocked hs);
               hpos0;
               hpos1;
             });
        match outcome with
        | `Progress ->
          Backoff.reset bo;
          (* Think time between statements, slept outside the latch: the
             gap during which other workers interleave — without it the
             latch hand-off all but serializes short transactions. *)
          if cfg.think_us > 0. && rest <> [] then
            Unix.sleepf (Random.State.float rng (2. *. cfg.think_us) /. 1e6);
          exec rest
        | `Finished | `Self_aborted _ -> ()
        | `Wait _ ->
          if tries >= cfg.max_op_retries then begin
            (* Starvation safety valve: restart rather than wait forever. *)
            locked sh (fun () ->
                Engine.abort_txn sh.engine tid;
                Hashtbl.remove sh.waits tid);
            Metrics.record_stall sh.metrics;
            emit sh ~tid Trace.Event.Stall_restart
          end
          else begin
            let t0 = now_ns () in
            Backoff.wait bo;
            let slept = now_ns () - t0 in
            waited_ns := !waited_ns + slept;
            Metrics.record_wait_ns sh.metrics slept;
            emit sh ~tid (Trace.Event.Lock_wait { slept_ns = slept });
            attempt_op (tries + 1)
          end
      in
      attempt_op 0
  in
  exec ops;
  let status =
    locked sh (fun () ->
        Hashtbl.remove sh.waits tid;
        Engine.status sh.engine tid)
  in
  let finish_ns = now_ns () in
  let outcome =
    match status with
    | Engine.Committed ->
      Metrics.record_commit ~wait_ns:!waited_ns sh.metrics
        ~latency_ns:(finish_ns - start_ns);
      emit sh ~tid Trace.Event.Commit;
      Recorder.Committed
    | Engine.Aborted reason ->
      Metrics.record_abort sh.metrics reason;
      emit sh ~tid
        (Trace.Event.Abort { reason = Metrics.abort_reason_slug reason });
      Recorder.Aborted reason
    | Engine.Active ->
      raise (Stuck (Fmt.str "T%d still active after its program ended" tid))
  in
  Recorder.record sh.recorder ~job:jidx ~name:job.name ~level:job.level ~tid
    ~attempt ~worker:widx ~start_ns ~finish_ns outcome;
  (outcome, tid, finish_ns - start_ns)

(* Retry policy: user aborts are the program's own decision and final;
   every system-initiated abort is retried until the budget runs out.
   The restart backoff resets per job and keeps escalating across the
   job's attempts — unlike the per-operation backoff, which resets on
   every successful step. *)
let run_job sh cfg ~rng ~bo ~rbo ~widx jidx job =
  Backoff.reset rbo;
  let rec go attempt =
    let outcome, tid, wall_ns =
      run_attempt sh cfg ~rng ~bo ~widx ~jidx ~attempt job
    in
    match outcome with
    | Recorder.Committed | Recorder.Aborted Engine.User_abort -> ()
    | Recorder.Aborted _ ->
      (* The failed attempt's whole wall time is retry overhead, and so is
         the restart backoff that follows it. *)
      Metrics.record_retry_overhead_ns sh.metrics wall_ns;
      if attempt >= cfg.max_attempts then Metrics.record_giveup sh.metrics
      else begin
        Metrics.record_retry sh.metrics;
        let t0 = now_ns () in
        Backoff.wait rbo;
        let slept = now_ns () - t0 in
        Metrics.record_retry_overhead_ns sh.metrics slept;
        emit sh ~tid
          (Trace.Event.Retry_backoff
             { slept_ns = slept; next_attempt = attempt + 1 });
        go (attempt + 1)
      end
  in
  go 1

let worker sh cfg ~next_job widx =
  Option.iter (fun s -> Trace.Sink.attach s ~worker:widx) sh.sink;
  let rng = Random.State.make [| cfg.seed; 0x90c0; widx |] in
  let bo = Backoff.create ~rng cfg.backoff in
  let rbo = Backoff.create ~rng cfg.retry_backoff in
  let rec loop () =
    match next_job () with
    | None -> ()
    | Some (jidx, job) ->
      run_job sh cfg ~rng ~bo ~rbo ~widx jidx job;
      loop ()
  in
  loop ()

let run_with cfg ~family ~next_job =
  let engine =
    Engine.create ~initial:cfg.initial ~predicates:cfg.predicates
      ~first_updater_wins:cfg.first_updater_wins
      ~next_key_locking:cfg.next_key_locking ~update_locks:cfg.update_locks
      ~family ()
  in
  let sh =
    {
      engine;
      latch = Mutex.create ();
      waits = Hashtbl.create 64;
      next_tid = Atomic.make 1;
      metrics = Metrics.create ();
      recorder = Recorder.create ~stripes:cfg.workers ();
      sink = cfg.trace;
    }
  in
  (* Lock traffic reaches the trace through the engine's observation
     hook; it fires under the latch on the calling worker's domain, so
     the DLS ring binding routes it correctly. *)
  (match cfg.trace with
  | None -> ()
  | Some s ->
    (* The hook runs under the latch: build the label by concatenation
       (same shape as {!Locking.Lock_table.pp_request}) rather than
       going through a formatter there. *)
    let req_label = function
      | Locking.Lock_table.Read_item k -> "S(" ^ k ^ ")"
      | Locking.Lock_table.Update_item k -> "U(" ^ k ^ ")"
      | Locking.Lock_table.Write_item { k; _ } -> "X(" ^ k ^ ")"
      | Locking.Lock_table.Read_pred p ->
        "S<" ^ Storage.Predicate.name p ^ ">"
      | Locking.Lock_table.Write_pred p ->
        "X<" ^ Storage.Predicate.name p ^ ">"
    in
    Engine.set_lock_hook engine (function
      | Locking.Lock_table.On_grant { owner; req; tag = _; upgrade } ->
        Trace.Sink.emit s ~tid:owner
          (Trace.Event.Lock_grant { req = req_label req; upgrade })
      | Locking.Lock_table.On_conflict { owner; req; upgrade; holders } ->
        Trace.Sink.emit s ~tid:owner
          (Trace.Event.Lock_conflict
             { req = req_label req; upgrade; holders })
      | Locking.Lock_table.On_release { owner; count } ->
        Trace.Sink.emit s ~tid:owner (Trace.Event.Lock_release { count })));
  Metrics.start sh.metrics;
  let spawned =
    List.init (cfg.workers - 1) (fun i ->
        Domain.spawn (fun () -> worker sh cfg ~next_job (i + 1)))
  in
  (* The calling domain is worker 0; join the rest even if it trips. *)
  let mine = try Ok (worker sh cfg ~next_job 0) with e -> Error e in
  List.iter Domain.join spawned;
  (match mine with Ok () -> () | Error e -> raise e);
  Metrics.stop sh.metrics;
  let history = Engine.trace engine in
  let events, events_dropped =
    match cfg.trace with
    | None -> ([], 0)
    | Some s -> (Trace.Sink.events s, Trace.Sink.dropped s)
  in
  {
    history;
    final = Engine.final_state engine;
    metrics = Metrics.snapshot sh.metrics;
    journal = Recorder.entries sh.recorder;
    oracle = Oracle.check ~phenomena:cfg.oracle_phenomena history;
    lock_stats = Engine.lock_stats engine;
    events;
    events_dropped;
  }

let family_for cfg levels =
  match cfg.family with
  | Some f -> f
  | None -> Engine.family_of_levels levels

let run cfg jobs =
  let family =
    family_for cfg (List.map (fun j -> j.level) (Array.to_list jobs))
  in
  let next = Atomic.make 0 in
  let next_job () =
    let i = Atomic.fetch_and_add next 1 in
    if i < Array.length jobs then Some (i, jobs.(i)) else None
  in
  run_with cfg ~family ~next_job

let run_for cfg ~duration_s ~gen =
  let family = family_for cfg [ (gen 0).level ] in
  let deadline = Unix.gettimeofday () +. duration_s in
  let next = Atomic.make 0 in
  let next_job () =
    if Unix.gettimeofday () >= deadline then None
    else
      let i = Atomic.fetch_and_add next 1 in
      Some (i, gen i)
  in
  run_with cfg ~family ~next_job
