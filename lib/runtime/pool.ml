(* The Domain-parallel worker pool.

   Concurrency architecture, from the inside out:

   - One engine instance, executed under *striped* mutual exclusion: a
     stripe set of [n] key stripes (mutexes indexed by {!Storage.Shard}
     key hash) plus one dedicated predicate stripe, ordered last. Before
     an engine step the worker asks the engine for the op's footprint
     ({!Core.Engine.footprint}) and acquires exactly the stripes it
     names, in ascending index order — so point reads and writes of keys
     in different shards run concurrently, while scans, commits, aborts
     and everything the engine cannot localize acquire every stripe,
     which is exactly the old coarse latch. Ascending acquisition makes
     the stripe mutexes themselves deadlock-free; the ordering "key
     stripe then predicate stripe" falls out because the predicate
     stripe has the highest index.

     Correctness invariants: every step holds at least one stripe; any
     all-stripes holder (commit, abort, scan, the deadlock detector)
     therefore excludes every step. Conflicting operations touch a
     common key or the predicate bucket, so their stripe sets intersect
     and they are totally ordered by a mutex — which is why the recorded
     history orders every pair of conflicting actions exactly as they
     executed. Non-conflicting actions may be recorded in either order;
     both orders are correct linearizations.

     [coarse = true] (the bench's comparison baseline, and the automatic
     mode for the single-threaded multiversion and timestamp engines)
     degenerates the set to one key stripe with every footprint forced
     to All: the unified code path then behaves exactly like the old
     single latch.

   - Workers never sleep while holding a stripe. A step that comes back
     [Blocked] releases its stripes and backs off with capped
     exponential jitter before retrying, so one transaction's lock wait
     costs only its own worker.

   - The waits-for graph is a {!Graph.Incremental}: a blocked step
     publishes its edges while still holding the step's stripes, and the
     incremental topological order rejects — and reports, with its
     witness — the exact edge insertion that would close a cycle. There
     is no snapshot-and-scan detector pass any more: detection costs
     nothing on the (overwhelmingly common) acyclic insertions, and a
     deadlock is known the instant the closing wait is published. The
     reporting worker then takes the detector mutex plus every stripe,
     re-checks that the witness path still stands (edges can go
     conservatively stale between a holder's release and the waiter's
     next poll — exactly as under the old coarse latch, where a broken
     "cycle" of that kind also cost one innocent restart), and aborts
     the youngest (highest-id) member, possibly the transaction of
     another worker. The victim's worker observes the abort on its next
     step ([Finished]) and restarts the job under a fresh transaction
     id. The closing edge itself is never stored, so a surviving
     deadlock is re-reported by the blocked waiter's next poll.

   - With [certify = true] the same incremental structure, in a second
     instance, certifies serializability online: every recorded action
     feeds the {!Certifier} through the engine trace hook, and the
     transaction whose action closes a dependency cycle is doomed on the
     spot. Workers poll {!Certifier.doomed} before each operation and
     abort the victim ([Certifier_abort]), so the committed projection
     stays acyclic — anomalies are certified away, not merely observed.

   - Job dispatch is a lock-free ticket: Atomic.fetch_and_add over the
     job array (or the generator, for timed runs).

   Transaction ids are globally fresh (an atomic counter), so a retried
   job appears in the history as a new transaction and the recorded
   trace stays well-formed: an aborted attempt terminates with its own
   abort action and never acts again. *)

module Action = History.Action
module Level = Isolation.Level
module Engine = Core.Engine
module Program = Core.Program
module Waits = Graph.Incremental

type job = {
  name : string;
  program : Program.t;
  level : Level.t;      (* execution level, constrained to the engine family *)
  declared : Level.t;   (* the level the client asked for — the mixed
                           criterion judges this transaction against it *)
  read_only : bool;
}

let job ?(name = "txn") ?(read_only = false) ?declared ~level program =
  let declared = Option.value declared ~default:level in
  { name; program; level; declared; read_only }

type config = {
  workers : int;
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  family : [ `Locking | `Mv | `Timestamp ] option;
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  stripes : int;
  coarse : bool;
  max_attempts : int;
  max_op_retries : int;
  think_us : float;
  backoff : Backoff.config;
  retry_backoff : Backoff.config;
  oracle_phenomena : Phenomena.Phenomenon.t list;
  oracle_window : int option;
  seed : int;
  trace : Trace.Sink.t option;
  fault : Fault.Plan.t option;   (* seeded fault plan; None = no injection *)
  deadline_us : float option;    (* per-attempt budget; abort + retry past it *)
  watchdog_us : float option;    (* stuck-worker threshold; None = no watchdog *)
  certify : bool;                (* online certification: doom cycle closers *)
  criterion : Certifier.criterion; (* what the certifier certifies *)
  levels : Level.t list;         (* declared level mix, for family inference *)
  certify_batch : bool;          (* buffer certifier offers outside the trace lock *)
  prune_every : int;             (* certifier era-pruning cadence; 0 = off *)
  wal_dir : string option;       (* segmented on-disk WAL; None = in-memory *)
  wal_segment_bytes : int option;(* segment rotation threshold *)
  wal_group_commit : bool;       (* batch commit fsyncs; false = one per commit *)
  checkpoint_every : int;        (* commits between WAL checkpoints; 0 = never *)
  keep_history : bool;           (* false: out-of-core — drop the trace, skip the oracle *)
  spill_dir : string option;     (* recorder journal spill directory *)
  stop : bool Atomic.t option;   (* drain flag: finish in-flight, take no new jobs *)
}

(* Restarting a whole transaction is costlier than re-polling one lock,
   and a retry that comes back too soon meets the same contenders and
   deadlocks again (the 2PL upgrade storm), so the restart window starts
   wider than a lock wait and escalates well past a transaction's
   lifetime. *)
let default_retry_backoff =
  { Backoff.base_us = 200.; cap_us = 20_000.; multiplier = 2. }

let default_stripes = 16

let config ?(workers = 4) ?(initial = []) ?(predicates = []) ?family
    ?(first_updater_wins = false) ?(next_key_locking = false)
    ?(update_locks = false) ?(stripes = default_stripes) ?(coarse = false)
    ?(max_attempts = 64) ?(max_op_retries = 10_000) ?(think_us = 0.)
    ?(backoff = Backoff.default) ?(retry_backoff = default_retry_backoff)
    ?(oracle_phenomena = Phenomena.Phenomenon.all) ?oracle_window ?(seed = 1)
    ?trace ?fault ?deadline_us ?watchdog_us ?(certify = false)
    ?(criterion = Certifier.Serializability) ?(levels = [])
    ?(certify_batch = true) ?(prune_every = 4096) ?wal_dir ?wal_segment_bytes
    ?(wal_group_commit = true) ?(checkpoint_every = 0) ?(keep_history = true)
    ?spill_dir ?stop () =
  {
    workers = max 1 workers;
    initial;
    predicates;
    family;
    first_updater_wins;
    next_key_locking;
    update_locks;
    stripes = max 1 stripes;
    coarse;
    max_attempts = max 1 max_attempts;
    max_op_retries = max 1 max_op_retries;
    think_us = Float.max 0. think_us;
    backoff;
    retry_backoff;
    oracle_phenomena;
    oracle_window;
    seed;
    trace;
    fault;
    deadline_us;
    watchdog_us;
    certify;
    criterion;
    levels;
    certify_batch;
    prune_every = max 0 prune_every;
    wal_dir;
    wal_segment_bytes;
    wal_group_commit;
    checkpoint_every = max 0 checkpoint_every;
    keep_history;
    spill_dir;
    stop;
  }

type live = {
  at : float;
  metrics : Metrics.snapshot;
  certifier : Certifier.stats option;
  lock_stats : Locking.Lock_table.stats option;
  lock_stripes : int;
  wal_entries : int;
  wal_stats : Storage.Wal.stats option;
  history_len : int;
}

type result = {
  history : History.t;
  final : (Action.key * Action.value) list;
  metrics : Metrics.snapshot;
  journal : Recorder.entry list;
  oracle : Oracle.t option;
  mixed : Oracle.mixed option; (* per-victim verdict, under the Mixed criterion *)
  certifier : Certifier.summary option; (* online verdict, when certifying *)
  lock_stats : Locking.Lock_table.stats option;
  events : Trace.Event.t list;
  events_dropped : int;
  wal : Storage.Wal.t option; (* the locking engine's log, for crash replay *)
}

exception Stuck of string

type shared = {
  engine : Engine.t;
  stripes : Stripes.t; (* nstripes key stripes + 1 predicate stripe *)
  nstripes : int;      (* key stripes; the predicate stripe is index nstripes *)
  all : int list;      (* the all-stripes plan, precomputed *)
  coarse : bool;       (* force the All plan for every step *)
  serial_aux : bool;   (* begin/status need the full stripe set (Mv/TO) *)
  waits : Waits.t;     (* the incremental waits-for graph *)
  certifier : Certifier.t option;
  detector : Mutex.t;  (* one confirm-and-break pass at a time *)
  next_tid : int Atomic.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
  sink : Trace.Sink.t option;
  (* Per-worker heartbeats for the watchdog: the stamp of the worker's
     last step entry (0 = not started, max_int = done), and the tid it is
     currently running — read by the watchdog domain, written only by the
     owning worker. *)
  hb : int Atomic.t array;
  hb_tid : int Atomic.t array;
}

let emit sh ~tid kind =
  match sh.sink with None -> () | Some s -> Trace.Sink.emit s ~tid kind

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* {2 Stripe plans}

   A plan is the ascending list of stripe indices a step acquires. Key
   stripes are [0 .. stripes - 1]; the predicate stripe is [stripes],
   deliberately the highest index so "key stripes, then the predicate
   stripe" is just ascending order. The empty-keys footprint still
   claims stripe 0: every step must hold at least one stripe, or
   all-stripes holders could not exclude it. *)
let stripe_plan ~stripes (fp : Engine.footprint) =
  match fp with
  | Engine.All -> List.init (stripes + 1) Fun.id
  | Engine.Keys { keys; pred } ->
    let ks =
      List.sort_uniq compare
        (List.map (fun k -> Storage.Shard.of_key ~shards:stripes k) keys)
    in
    let plan = if pred then ks @ [ stripes ] else ks in
    (match plan with [] -> [ 0 ] | plan -> plan)

let all_plan sh = sh.all

let plan_for sh tid op =
  if sh.coarse then all_plan sh
  else stripe_plan ~stripes:sh.nstripes (Engine.footprint sh.engine tid op)

let acquire_plan sh ~tid plan =
  List.iter
    (fun i ->
      let contended = Stripes.acquire sh.stripes i in
      Metrics.record_stripe_acquire sh.metrics i ~contended;
      if contended && sh.sink <> None then
        emit sh ~tid (Trace.Event.Stripe_wait { stripe = i }))
    plan

let release_plan sh plan = List.iter (fun i -> Stripes.release sh.stripes i) plan

(* {2 The incremental waits-for graph}

   Publishing is [remove_out_edges] + one [add_edge] per holder, all
   under the step's stripes; the incremental topological order makes the
   acyclic case O(1) amortised and *rejects* the edge that would close a
   cycle, handing back the witness path [holder -> ... -> tid]. The
   rejected closing edge is deliberately not stored: if the deadlock
   survives the break attempt, the blocked waiter's next poll re-reports
   it against the re-published edges. *)

let set_waiting sh tid holders =
  Waits.remove_out_edges sh.waits tid;
  List.fold_left
    (fun acc h ->
      match Waits.add_edge sh.waits tid h with
      | `Ok | `Exists -> acc
      | `Cycle path -> (match acc with None -> Some path | some -> some))
    None holders

(* Progress drops the transaction's node wholesale — out-edges are its
   now-satisfied waits, and in-edges are other waiters' stale claims on
   it, which their own next poll re-publishes if still true. *)
let clear_waiting sh tid = Waits.remove_node sh.waits tid

(* Break the deadlock whose witness [path] ([holder; ...; tid], closed
   by the rejected edge [tid -> holder]) was just reported to this
   worker. Under the detector mutex and every stripe no step is in
   flight; if each witness edge still stands (a holder releasing
   between our publish and now dissolves the cycle — conservatively
   stale edges can still cost one innocent restart, exactly as under
   the retired snapshot detector), abort the youngest member. *)
let break_deadlock sh tid path =
  Mutex.lock sh.detector;
  let plan = all_plan sh in
  acquire_plan sh ~tid plan;
  let rec stands = function
    | a :: (b :: _ as rest) -> Waits.mem_edge sh.waits a b && stands rest
    | _ -> true
  in
  let verdict =
    if not (stands path) then `Wait
    else begin
      let cycle = path in
      let victim = List.fold_left max min_int cycle in
      Engine.abort_txn sh.engine victim;
      clear_waiting sh victim;
      Metrics.record_deadlock sh.metrics;
      emit sh ~tid:victim (Trace.Event.Deadlock_victim { cycle });
      if victim = tid then `Self_aborted else `Wait
    end
  in
  release_plan sh plan;
  Mutex.unlock sh.detector;
  verdict

(* Graceful self-abort from outside the program — an injected fault or a
   blown deadline. The abort touches everything, so it takes every
   stripe, like the stall safety valve; the attempt then terminates and
   the job's retry machinery takes over under a fresh tid. *)
(* Returns the reason the abort actually landed with: if another actor
   (a deadlock break on some other worker) terminated the transaction
   first, that earlier reason stands and owns the accounting. *)
let abort_self sh ~tid reason =
  let plan = all_plan sh in
  acquire_plan sh ~tid plan;
  Engine.abort_txn ~reason sh.engine tid;
  clear_waiting sh tid;
  let actual =
    match Engine.status sh.engine tid with
    | Engine.Aborted r -> r
    | Engine.Committed | Engine.Active -> reason
  in
  release_plan sh plan;
  actual

(* {2 The watchdog}

   A spare domain polling the per-worker heartbeats. A worker that has
   not stamped its heartbeat within [threshold_us] is reported — once
   per stuck episode, i.e. once per stale heartbeat value — as a
   watchdog kick, with a trace event attributed to the stuck worker's
   lane and current tid. The watchdog only observes; recovery is the
   deadline/retry machinery's job (a stalled worker resumes by itself,
   a deadlocked one is broken by the detector). It owns no ring, so its
   events go through the sink's external side channel. *)
let watchdog_loop sh ~stop ~threshold_us =
  let n = Array.length sh.hb in
  let kicked = Array.make n min_int in
  let interval_s = Float.max 5e-4 (threshold_us /. 4. /. 1e6) in
  let threshold_ns = int_of_float (threshold_us *. 1e3) in
  while not (Atomic.get stop) do
    Unix.sleepf interval_s;
    let now = now_ns () in
    for w = 0 to n - 1 do
      let ts = Atomic.get sh.hb.(w) in
      if ts > 0 && ts < max_int && now - ts > threshold_ns && kicked.(w) <> ts
      then begin
        kicked.(w) <- ts;
        Metrics.record_watchdog sh.metrics;
        match sh.sink with
        | Some s ->
          Trace.Sink.emit_external s ~worker:w ~tid:(Atomic.get sh.hb_tid.(w))
            (Trace.Event.Watchdog { worker = w; stalled_ns = now - ts })
        | None -> ()
      end
    done
  done

(* Begin/terminal-status calls on the striped locking engine are
   internally synchronized (registry mutex, atomics) and run without
   stripes; the multiversion and timestamp engines are single-threaded
   throughout and get the full set. *)
let with_aux_exclusion sh ~tid f =
  if sh.serial_aux then begin
    let plan = all_plan sh in
    acquire_plan sh ~tid plan;
    Fun.protect ~finally:(fun () -> release_plan sh plan) f
  end
  else f ()

(* One attempt at a job: begin a fresh transaction, drive every
   operation through the engine (waiting out blocks), and report the
   terminal status. *)
let run_attempt sh cfg ~rng ~bo ~widx ~jidx ~attempt job =
  let tid = Atomic.fetch_and_add sh.next_tid 1 in
  let ops =
    if Program.terminated job.program then job.program.Program.ops
    else job.program.Program.ops @ [ Program.Commit ]
  in
  let start_ns = now_ns () in
  let traced = sh.sink <> None in
  let waited_ns = ref 0 in
  (* Fault coordinates: the plan draws per (tid, step-consultation seq),
     so a retried attempt (fresh tid) draws fresh decisions. *)
  let nstep = ref 0 in
  let deadline_at =
    match cfg.deadline_us with
    | Some us -> start_ns + int_of_float (us *. 1e3)
    | None -> max_int
  in
  Atomic.set sh.hb_tid.(widx) tid;
  Atomic.set sh.hb.(widx) start_ns;
  emit sh ~tid
    (Trace.Event.Attempt_begin
       { job = jidx; name = job.name; attempt; level = Level.name job.declared });
  with_aux_exclusion sh ~tid (fun () ->
      Engine.begin_txn ~read_only:job.read_only sh.engine tid ~level:job.level);
  (* Declare the level before the first action can reach the certifier:
     under the mixed criterion the cycle judgment is victim-relative. *)
  (match sh.certifier with
  | Some c -> Certifier.note_level c ~tid ~level:job.declared
  | None -> ());
  Backoff.reset bo;
  let rec exec = function
    | [] -> ()
    | op :: rest ->
      let op_str = if traced then Fmt.str "%a" Program.pp_op op else "" in
      let rec attempt_op tries =
        Atomic.set sh.hb.(widx) (now_ns ());
        let fault =
          match cfg.fault with
          | None -> None
          | Some plan ->
            let seq = !nstep in
            incr nstep;
            Fault.Plan.point plan ~tid (Fault.Plan.Step { seq })
        in
        (match fault with
        | Some (Fault.Plan.Stall { us }) ->
          (* Stall holding no stripes: the worker just goes dark, which
             is what the deadline and the watchdog exist to notice — the
             heartbeat is deliberately left stale for the duration. *)
          Metrics.record_fault sh.metrics;
          emit sh ~tid (Trace.Event.Fault_inject { klass = "stall" });
          Unix.sleepf (us /. 1e6)
        | _ -> ());
        match fault with
        | Some Fault.Plan.Step_fail ->
          (* Spurious failure: abort here; the job retries. *)
          Metrics.record_fault sh.metrics;
          emit sh ~tid (Trace.Event.Fault_inject { klass = "step_fail" });
          ignore (abort_self sh ~tid Engine.Fault_injected : Engine.abort_reason)
        | Some Fault.Plan.Victim ->
          (* Forced deadlock victim: same path a detector break takes. *)
          Metrics.record_fault sh.metrics;
          emit sh ~tid (Trace.Event.Fault_inject { klass = "victim" });
          ignore (abort_self sh ~tid Engine.Deadlock_victim : Engine.abort_reason)
        | _
          when (match sh.certifier with
               | Some c -> Certifier.doomed c tid
               | None -> false) ->
          (* The certifier doomed us for closing a dependency cycle:
             abort before the next operation (in particular before a
             commit), keeping the committed projection acyclic. *)
          Metrics.record_certifier_abort ~level:job.declared sh.metrics;
          ignore (abort_self sh ~tid Engine.Certifier_abort : Engine.abort_reason)
        | _ when now_ns () > deadline_at -> (
          (* Past the budget (blocked waits and injected stalls count):
             graceful abort; the retry starts a fresh deadline window.
             Count it only if the abort landed as ours — a concurrent
             deadlock break may have terminated the transaction first,
             and then its reason owns the accounting. *)
          match abort_self sh ~tid Engine.Deadline_exceeded with
          | Engine.Deadline_exceeded ->
            Metrics.record_deadline_exceeded sh.metrics;
            emit sh ~tid
              (Trace.Event.Deadline_exceeded
                 {
                   elapsed_ns = now_ns () - start_ns;
                   budget_ns = deadline_at - start_ns;
                 })
          | _ -> ())
        | _ ->
        emit sh ~tid (Trace.Event.Step_begin { op = op_str });
        let plan = plan_for sh tid op in
        acquire_plan sh ~tid plan;
        let hpos0 = Engine.trace_len sh.engine in
        let stepped =
          match Engine.step sh.engine tid op with
          | Engine.Progress ->
            clear_waiting sh tid;
            `Progress
          | Engine.Finished ->
            (* terminated from outside: deadlock victim *)
            clear_waiting sh tid;
            `Finished
          | Engine.Blocked holders ->
            Metrics.record_block sh.metrics;
            (* Publish the edges while still holding the step's stripes,
               so they reflect a completed step; the insertion itself
               reports the cycle-closing edge, if any. *)
            `Blocked (holders, set_waiting sh tid holders)
        in
        let hpos1 = Engine.trace_len sh.engine in
        release_plan sh plan;
        let outcome =
          match stepped with
          | (`Progress | `Finished) as o -> o
          | `Blocked (holders, None) -> `Wait holders
          | `Blocked (holders, Some path) -> (
            match break_deadlock sh tid path with
            | `Wait -> `Wait holders
            | `Self_aborted -> `Self_aborted holders)
        in
        emit sh ~tid
          (Trace.Event.Step_end
             {
               op = op_str;
               outcome =
                 (match outcome with
                 | `Progress -> Trace.Event.Progress
                 | `Finished -> Trace.Event.Finished
                 | `Wait hs | `Self_aborted hs -> Trace.Event.Blocked hs);
               hpos0;
               hpos1;
             });
        match outcome with
        | `Progress ->
          Backoff.reset bo;
          (* Think time between statements, slept holding no stripes:
             the gap during which other workers interleave — without it
             the stripe hand-off all but serializes short transactions
             on hot keys. *)
          if cfg.think_us > 0. && rest <> [] then
            Unix.sleepf (Random.State.float rng (2. *. cfg.think_us) /. 1e6);
          exec rest
        | `Finished | `Self_aborted _ -> ()
        | `Wait _ ->
          if tries >= cfg.max_op_retries then begin
            (* Starvation safety valve: restart rather than wait forever.
               The abort touches everything, so it takes every stripe. *)
            let plan = all_plan sh in
            acquire_plan sh ~tid plan;
            Engine.abort_txn sh.engine tid;
            clear_waiting sh tid;
            release_plan sh plan;
            Metrics.record_stall sh.metrics;
            emit sh ~tid Trace.Event.Stall_restart
          end
          else begin
            let t0 = now_ns () in
            Backoff.wait bo;
            let slept = now_ns () - t0 in
            waited_ns := !waited_ns + slept;
            Metrics.record_wait_ns sh.metrics slept;
            emit sh ~tid (Trace.Event.Lock_wait { slept_ns = slept });
            attempt_op (tries + 1)
          end
      in
      attempt_op 0
  in
  exec ops;
  (* The entry is already cleared by the last step; this sweep only
     covers defensive corner cases (e.g. a program ending mid-wait). *)
  clear_waiting sh tid;
  let status =
    with_aux_exclusion sh ~tid (fun () -> Engine.status sh.engine tid)
  in
  (* Group-commit durability point: the commit record was appended under
     the commit's stripes; the fsync that makes it durable happens here,
     holding no stripes, batched with every other worker waiting at the
     same point ({!Core.Engine.wal_sync}). *)
  if status = Engine.Committed then Engine.wal_sync sh.engine;
  let finish_ns = now_ns () in
  let outcome =
    match status with
    | Engine.Committed ->
      Metrics.record_commit ~wait_ns:!waited_ns ~level:job.declared sh.metrics
        ~latency_ns:(finish_ns - start_ns);
      emit sh ~tid Trace.Event.Commit;
      Recorder.Committed
    | Engine.Aborted reason ->
      Metrics.record_abort ~level:job.declared sh.metrics reason;
      emit sh ~tid
        (Trace.Event.Abort { reason = Metrics.abort_reason_slug reason });
      Recorder.Aborted reason
    | Engine.Active ->
      raise (Stuck (Fmt.str "T%d still active after its program ended" tid))
  in
  Recorder.record sh.recorder ~job:jidx ~name:job.name ~level:job.declared ~tid
    ~attempt ~worker:widx ~start_ns ~finish_ns outcome;
  (* Everything the runtime will ever ask the engine about this tid has
     been asked (the status read above; env reads happen mid-program);
     release its slot so long runs don't retain every finished txn. The
     MV/timestamp transaction tables only tolerate mutation under every
     stripe, hence the aux exclusion (a no-op for the locking engine,
     which serialises the call itself). *)
  with_aux_exclusion sh ~tid (fun () -> Engine.forget sh.engine tid);
  (outcome, tid, finish_ns - start_ns)

(* Retry policy: user aborts are the program's own decision and final;
   every system-initiated abort is retried until the budget runs out.
   The restart backoff resets per job and keeps escalating across the
   job's attempts — unlike the per-operation backoff, which resets on
   every successful step. *)
let run_job sh cfg ~rng ~bo ~rbo ~widx jidx job =
  Backoff.reset rbo;
  let rec go attempt =
    let outcome, tid, wall_ns =
      run_attempt sh cfg ~rng ~bo ~widx ~jidx ~attempt job
    in
    match outcome with
    | Recorder.Committed | Recorder.Aborted Engine.User_abort -> ()
    | Recorder.Aborted _ ->
      (* The failed attempt's whole wall time is retry overhead, and so is
         the restart backoff that follows it. *)
      Metrics.record_retry_overhead_ns sh.metrics wall_ns;
      if attempt >= cfg.max_attempts then Metrics.record_giveup sh.metrics
      else begin
        Metrics.record_retry sh.metrics;
        let t0 = now_ns () in
        Backoff.wait rbo;
        let slept = now_ns () - t0 in
        Metrics.record_retry_overhead_ns sh.metrics slept;
        emit sh ~tid
          (Trace.Event.Retry_backoff
             { slept_ns = slept; next_attempt = attempt + 1 });
        go (attempt + 1)
      end
  in
  go 1

let worker sh cfg ~next_job widx =
  Option.iter (fun s -> Trace.Sink.attach s ~worker:widx) sh.sink;
  let rng = Random.State.make [| cfg.seed; 0x90c0; widx |] in
  let bo = Backoff.create ~rng cfg.backoff in
  let rbo = Backoff.create ~rng cfg.retry_backoff in
  let rec loop () =
    match next_job () with
    | None ->
      (* Done: park the heartbeat so an idle worker is never mistaken
         for a stuck one while the others drain. *)
      Atomic.set sh.hb.(widx) max_int
    | Some (jidx, job) ->
      run_job sh cfg ~rng ~bo ~rbo ~widx jidx job;
      loop ()
  in
  loop ()

(* Build the shared execution state: engine, stripes, waits-for graph,
   certifier/tear/lock hooks — everything both entry points (the batch
   runner [run_with] and the server's parked-session [exec] interface)
   need, up to and including [Metrics.start]. *)
let make_shared (cfg : config) ~family =
  (* Only the locking engine is striped; the multiversion and timestamp
     engines stay single-threaded and run every step (and begin/status)
     under the full stripe set — behaviorally the old coarse latch.
     [cfg.coarse] forces the same degenerate shape onto the locking
     engine for baseline comparison. *)
  let striped = family = `Locking && not cfg.coarse in
  let nstripes = if striped then cfg.stripes else 1 in
  let engine =
    Engine.create ~initial:cfg.initial ~predicates:cfg.predicates
      ~stripes:nstripes ~audit:false
      ~first_updater_wins:cfg.first_updater_wins
      ~next_key_locking:cfg.next_key_locking ~update_locks:cfg.update_locks
      ?wal_dir:cfg.wal_dir ?wal_segment_bytes:cfg.wal_segment_bytes
      ~wal_group_commit:cfg.wal_group_commit
      ~checkpoint_every:cfg.checkpoint_every ~retain_trace:cfg.keep_history
      ~family ()
  in
  let certifier =
    if not cfg.certify then None
    else begin
      (* Event emission rides the acting worker's DLS ring binding, like
         the lock hook: both callbacks fire inside the engine's trace
         critical section on the acting worker's domain. *)
      let on_edge, on_cycle =
        match cfg.trace with
        | None -> (None, None)
        | Some s ->
          ( Some
              (fun ~src ~dst ~dep ->
                Trace.Sink.emit s ~tid:dst
                  (Trace.Event.Dep_edge { src; dst; dep })),
            Some
              (fun (v : Certifier.violation) ->
                Trace.Sink.emit s ~tid:v.dst
                  (Trace.Event.Dep_cycle
                     { cycle = v.cycle; dep = v.dep; src = v.src; dst = v.dst;
                       victim_level = v.victim_level })) )
      in
      Some
        (Certifier.create ?on_edge ?on_cycle ~batch:cfg.certify_batch
           ~prune_every:cfg.prune_every ~mode:Certifier.Enforce
           ~criterion:cfg.criterion ~family ())
    end
  in
  let sh =
    {
      engine;
      stripes = Stripes.create (nstripes + 1);
      nstripes;
      all = List.init (nstripes + 1) Fun.id;
      coarse = not striped;
      serial_aux = family <> `Locking;
      waits = Waits.create ();
      certifier;
      detector = Mutex.create ();
      next_tid = Atomic.make 1;
      metrics = Metrics.create ~stripes:nstripes ();
      recorder = Recorder.create ~stripes:cfg.workers ?spill_dir:cfg.spill_dir ();
      sink = cfg.trace;
      hb = Array.init (max 1 cfg.workers) (fun _ -> Atomic.make 0);
      hb_tid = Array.init (max 1 cfg.workers) (fun _ -> Atomic.make 0);
    }
  in
  (* The certifier feed: every action enters the recorded trace exactly
     once, inside the engine's trace critical section, on the acting
     worker's domain — so the certifier sees the history in its recorded
     order and a doomed transaction observes its doom before its own
     next operation. *)
  (match certifier with
  | None -> ()
  | Some c -> Engine.set_trace_hook engine (fun pos a -> Certifier.observe c pos a));
  (* Vacuum retirement feed (multiversion only): the engine reports the
     versions each vacuum buried — under the committing worker's
     all-stripes exclusion — and the certifier drops its version-order
     entries for exactly those, keeping [--history false] MV runs flat. *)
  (match certifier with
  | None -> ()
  | Some c -> Engine.set_prune_hook engine (fun buried -> Certifier.mv_trim c ~buried));
  (* Torn-commit injection: the hook fires on the committing worker's
     domain (under its stripes, DLS ring bound), so metrics and trace
     emission are safe here. *)
  (match cfg.fault with
  | None -> ()
  | Some plan ->
    Engine.set_tear_hook engine (fun tid ->
        match Fault.Plan.point plan ~tid Fault.Plan.Commit with
        | Some Fault.Plan.Torn_commit ->
          Metrics.record_fault sh.metrics;
          emit sh ~tid (Trace.Event.Fault_inject { klass = "torn_commit" });
          true
        | _ -> false));
  (* Lock traffic reaches the trace through the engine's observation
     hook; it fires inside a step — so under the step's stripes — on the
     calling worker's domain, and the DLS ring binding routes it
     correctly. *)
  (match cfg.trace with
  | None -> ()
  | Some s ->
    (* The hook runs inside the stripe critical section: build the label
       by concatenation (same shape as {!Locking.Lock_table.pp_request})
       rather than going through a formatter there. *)
    let req_label = function
      | Locking.Lock_table.Read_item k -> "S(" ^ k ^ ")"
      | Locking.Lock_table.Update_item k -> "U(" ^ k ^ ")"
      | Locking.Lock_table.Write_item { k; _ } -> "X(" ^ k ^ ")"
      | Locking.Lock_table.Read_pred p ->
        "S<" ^ Storage.Predicate.name p ^ ">"
      | Locking.Lock_table.Write_pred p ->
        "X<" ^ Storage.Predicate.name p ^ ">"
    in
    Engine.set_lock_hook engine (function
      | Locking.Lock_table.On_grant { owner; req; tag = _; upgrade } ->
        Trace.Sink.emit s ~tid:owner
          (Trace.Event.Lock_grant { req = req_label req; upgrade })
      | Locking.Lock_table.On_conflict { owner; req; upgrade; holders } ->
        Trace.Sink.emit s ~tid:owner
          (Trace.Event.Lock_conflict
             { req = req_label req; upgrade; holders })
      | Locking.Lock_table.On_release { owner; count } ->
        Trace.Sink.emit s ~tid:owner (Trace.Event.Lock_release { count })));
  Metrics.start sh.metrics;
  sh

(* Stop the clock and gather everything a finished run reports — the
   tail shared by [run_with] and the server's [exec_finalize]. The trace
   sink's per-worker rings and the recorder shards are drained here, so
   a drained shutdown keeps its tail events. *)
let collect_result (cfg : config) sh =
  Metrics.stop sh.metrics;
  let history = Engine.trace sh.engine in
  let events, events_dropped =
    match cfg.trace with
    | None -> ([], 0)
    | Some s -> (Trace.Sink.events s, Trace.Sink.dropped s)
  in
  {
    history;
    final = Engine.final_state sh.engine;
    metrics = Metrics.snapshot sh.metrics;
    (* Out-of-core runs ([keep_history = false]) recorded no engine trace,
       so there is nothing for the oracle to check — the online certifier
       is the verdict — and the journal, possibly spilled to disk, is not
       materialized back into memory (stream it with
       {!Recorder.iter_entries} instead). *)
    journal = (if cfg.keep_history then Recorder.entries sh.recorder else []);
    oracle =
      (if cfg.keep_history then
         Some
           (Oracle.check ~phenomena:cfg.oracle_phenomena
              ?window:cfg.oracle_window history)
       else None);
    mixed =
      (* The per-victim verdict needs the full history plus each
         transaction's declared level — the recorder journal carries
         exactly that mapping. *)
      (if cfg.criterion = Certifier.Mixed && cfg.keep_history then
         let levels =
           List.map
             (fun (e : Recorder.entry) -> (e.tid, e.level))
             (Recorder.entries sh.recorder)
         in
         Some
           (Oracle.check_mixed ~phenomena:cfg.oracle_phenomena ~levels history)
       else None);
    certifier = Option.map Certifier.finalize sh.certifier;
    lock_stats = Engine.lock_stats sh.engine;
    events;
    events_dropped;
    wal = Engine.wal sh.engine;
  }

(* {2 Live observation}

   Everything here is a racy-tolerant read of running state: metric
   counter sums are per-cell atomic and monotone ({!Metrics.snapshot}'s
   live contract), the certifier reads its gauges under its own locks
   without draining the batch queue, the lock-table counters are
   atomics, and WAL/history lengths come from their own synchronized
   accessors. No worker is stopped or slowed beyond the cache traffic
   of the reads themselves. *)

let live_of_shared sh : live =
  {
    at = Unix.gettimeofday ();
    metrics = Metrics.snapshot sh.metrics;
    certifier = Option.map Certifier.stats sh.certifier;
    lock_stats = Engine.lock_stats sh.engine;
    lock_stripes = sh.nstripes;
    wal_entries =
      (match Engine.wal sh.engine with
      | None -> 0
      | Some w -> Storage.Wal.length w);
    wal_stats = Option.map Storage.Wal.stats (Engine.wal sh.engine);
    history_len = Engine.trace_len sh.engine;
  }

let run_with ?monitor (cfg : config) ~family ~next_job =
  let sh = make_shared cfg ~family in
  let stop_watchdog = Atomic.make false in
  let watchdog =
    match cfg.watchdog_us with
    | None -> None
    | Some threshold_us ->
      Some
        (Domain.spawn (fun () ->
             watchdog_loop sh ~stop:stop_watchdog ~threshold_us))
  in
  let spawned =
    List.init (cfg.workers - 1) (fun i ->
        Domain.spawn (fun () -> worker sh cfg ~next_job (i + 1)))
  in
  (* Hand the caller a live sampler before this domain becomes worker 0;
     the callback must return promptly (spawn a thread to poll). *)
  (match monitor with
  | None -> ()
  | Some f -> f (fun () -> live_of_shared sh));
  (* The calling domain is worker 0; join the rest even if it trips. *)
  let mine = try Ok (worker sh cfg ~next_job 0) with e -> Error e in
  List.iter Domain.join spawned;
  Atomic.set stop_watchdog true;
  Option.iter Domain.join watchdog;
  (match mine with Ok () -> () | Error e -> raise e);
  collect_result cfg sh

(* Family inference prefers the declared mix ([cfg.levels]) over the
   jobs in hand: a generator-mode run materializes one job at a time, so
   judging the family from [(gen 0).level] alone would accept a
   cross-family mix whose first draw looks innocent and then crash (or
   silently mis-run) mid-stream. With the full mix declared up front the
   rejection is immediate and names the offending levels. *)
let family_for cfg levels =
  match cfg.family with
  | Some f -> f
  | None ->
    Engine.family_of_levels (if cfg.levels <> [] then cfg.levels else levels)

(* The drain flag: once set, [next_job] answers None — workers finish
   the job in hand (its retries included) and exit, and the collectors
   then drain every recorder shard and trace ring as usual, so a SIGINT
   shutdown loses no tail events. *)
let draining cfg =
  match cfg.stop with Some s -> Atomic.get s | None -> false

let run ?monitor cfg jobs =
  let family =
    family_for cfg (List.map (fun j -> j.level) (Array.to_list jobs))
  in
  let next = Atomic.make 0 in
  let next_job () =
    if draining cfg then None
    else
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length jobs then Some (i, jobs.(i)) else None
  in
  run_with cfg ?monitor ~family ~next_job

(* Counted generator runs: like [run], but jobs are generated on demand
   instead of materialized as an array — a million-transaction run holds
   only the jobs in flight. *)
let run_n ?monitor cfg ~txns ~gen =
  let family = family_for cfg [ (gen 0).level ] in
  let next = Atomic.make 0 in
  let next_job () =
    if draining cfg then None
    else
      let i = Atomic.fetch_and_add next 1 in
      if i < txns then Some (i, gen i) else None
  in
  run_with cfg ?monitor ~family ~next_job

let run_for ?monitor cfg ~duration_s ~gen =
  let family = family_for cfg [ (gen 0).level ] in
  let deadline = Unix.gettimeofday () +. duration_s in
  let next = Atomic.make 0 in
  let next_job () =
    if draining cfg || Unix.gettimeofday () >= deadline then None
    else
      let i = Atomic.fetch_and_add next 1 in
      Some (i, gen i)
  in
  run_with cfg ?monitor ~family ~next_job

(* {2 Parked, resumable transactions — the server's entry points}

   The batch runner above owns its workers: a blocked operation sleeps
   its worker in [Backoff.wait] and retries in place. A network server
   multiplexing thousands of sessions over a fixed pool cannot afford
   that — a session that blocks must *park*, freeing the worker for
   runnable sessions, and retry when its backoff expires. [exec] exposes
   exactly one engine step at a time for that caller: same stripe plans,
   same waits-for publication and deadlock break, same fault / certifier
   / deadline consultations as [run_attempt], but the "wait" outcome is
   returned to the caller instead of being slept through. The session
   layer owns the per-transaction bookkeeping the batch runner keeps on
   its stack (attempt counts, per-session backoff state, accumulated
   wait time) and feeds it back in for the terminal accounting. *)

type exec = { ecfg : config; esh : shared }

type session_step =
  | Session_progress
  | Session_blocked of { holders : int list }
  | Session_finished
  | Session_aborted of Engine.abort_reason

let exec_create (cfg : config) ~family = { ecfg = cfg; esh = make_shared cfg ~family }

let exec_attach_worker t ~worker =
  Option.iter (fun s -> Trace.Sink.attach s ~worker) t.esh.sink

let exec_fresh_tid t = Atomic.fetch_and_add t.esh.next_tid 1
let exec_env t ~tid = Engine.env t.esh.engine tid

let exec_status t ~tid =
  with_aux_exclusion t.esh ~tid (fun () -> Engine.status t.esh.engine tid)

let heartbeat sh ~worker ~tid =
  if worker >= 0 && worker < Array.length sh.hb then begin
    Atomic.set sh.hb_tid.(worker) tid;
    Atomic.set sh.hb.(worker) (now_ns ())
  end

let exec_begin ?declared t ~worker ~tid ~job ~name ~attempt ~level ~read_only =
  let sh = t.esh in
  let declared = Option.value declared ~default:level in
  heartbeat sh ~worker ~tid;
  emit sh ~tid
    (Trace.Event.Attempt_begin
       { job; name; attempt; level = Level.name declared });
  with_aux_exclusion sh ~tid (fun () ->
      Engine.begin_txn ~read_only sh.engine tid ~level);
  match sh.certifier with
  | Some c -> Certifier.note_level c ~tid ~level:declared
  | None -> ()

let exec_step ?level t ~worker ~tid ~seq ~start_ns op =
  let sh = t.esh and cfg = t.ecfg in
  heartbeat sh ~worker ~tid;
  let fault =
    match cfg.fault with
    | None -> None
    | Some plan -> Fault.Plan.point plan ~tid (Fault.Plan.Step { seq })
  in
  (match fault with
  | Some (Fault.Plan.Stall { us }) ->
    (* Stalls sleep the serving worker in place: a dark worker is what
       the deadline and watchdog exist to notice, sessions included. *)
    Metrics.record_fault sh.metrics;
    emit sh ~tid (Trace.Event.Fault_inject { klass = "stall" });
    Unix.sleepf (us /. 1e6)
  | _ -> ());
  let deadline_at =
    match cfg.deadline_us with
    | Some us -> start_ns + int_of_float (us *. 1e3)
    | None -> max_int
  in
  match fault with
  | Some Fault.Plan.Step_fail ->
    Metrics.record_fault sh.metrics;
    emit sh ~tid (Trace.Event.Fault_inject { klass = "step_fail" });
    Session_aborted (abort_self sh ~tid Engine.Fault_injected)
  | Some Fault.Plan.Victim ->
    Metrics.record_fault sh.metrics;
    emit sh ~tid (Trace.Event.Fault_inject { klass = "victim" });
    Session_aborted (abort_self sh ~tid Engine.Deadlock_victim)
  | _
    when (match sh.certifier with
         | Some c -> Certifier.doomed c tid
         | None -> false) ->
    Metrics.record_certifier_abort ?level sh.metrics;
    Session_aborted (abort_self sh ~tid Engine.Certifier_abort)
  | _ when now_ns () > deadline_at ->
    (* As in the batch path: a concurrent deadlock break may land its
       abort first, and then its reason owns the accounting. *)
    let actual = abort_self sh ~tid Engine.Deadline_exceeded in
    if actual = Engine.Deadline_exceeded then begin
      Metrics.record_deadline_exceeded sh.metrics;
      emit sh ~tid
        (Trace.Event.Deadline_exceeded
           {
             elapsed_ns = now_ns () - start_ns;
             budget_ns = deadline_at - start_ns;
           })
    end;
    Session_aborted actual
  | _ ->
    let traced = sh.sink <> None in
    let op_str = if traced then Fmt.str "%a" Program.pp_op op else "" in
    emit sh ~tid (Trace.Event.Step_begin { op = op_str });
    let plan = plan_for sh tid op in
    acquire_plan sh ~tid plan;
    let hpos0 = Engine.trace_len sh.engine in
    let stepped =
      match Engine.step sh.engine tid op with
      | Engine.Progress ->
        clear_waiting sh tid;
        `Progress
      | Engine.Finished ->
        clear_waiting sh tid;
        `Finished
      | Engine.Blocked holders ->
        Metrics.record_block sh.metrics;
        `Blocked (holders, set_waiting sh tid holders)
    in
    let hpos1 = Engine.trace_len sh.engine in
    release_plan sh plan;
    let outcome =
      match stepped with
      | (`Progress | `Finished) as o -> o
      | `Blocked (holders, None) -> `Wait holders
      | `Blocked (holders, Some path) -> (
        match break_deadlock sh tid path with
        | `Wait -> `Wait holders
        | `Self_aborted -> `Self_aborted holders)
    in
    emit sh ~tid
      (Trace.Event.Step_end
         {
           op = op_str;
           outcome =
             (match outcome with
             | `Progress -> Trace.Event.Progress
             | `Finished -> Trace.Event.Finished
             | `Wait hs | `Self_aborted hs -> Trace.Event.Blocked hs);
           hpos0;
           hpos1;
         });
    (match outcome with
    | `Progress -> Session_progress
    | `Finished -> Session_finished
    | `Self_aborted _ -> Session_aborted Engine.Deadlock_victim
    | `Wait holders -> Session_blocked { holders })

let exec_abort ?(reason = Engine.User_abort) t ~tid =
  ignore (abort_self t.esh ~tid reason : Engine.abort_reason)

(* The starvation safety valve, mirrored from [run_attempt]: a session
   that exhausted its blocked retries of one operation aborts itself and
   lets the client restart the transaction. *)
let exec_stall_restart t ~tid =
  let sh = t.esh in
  let plan = all_plan sh in
  acquire_plan sh ~tid plan;
  Engine.abort_txn sh.engine tid;
  clear_waiting sh tid;
  release_plan sh plan;
  Metrics.record_stall sh.metrics;
  emit sh ~tid Trace.Event.Stall_restart

let exec_family t = Engine.family t.esh.engine
let exec_live t = live_of_shared t.esh

let exec_finish t ~worker ~tid ~job ~name ~level ~attempt ~start_ns ~wait_ns =
  let sh = t.esh in
  clear_waiting sh tid;
  let status =
    with_aux_exclusion sh ~tid (fun () -> Engine.status sh.engine tid)
  in
  (* As in [run_attempt]: the committed session waits out its group-commit
     fsync here, holding no stripes. *)
  if status = Engine.Committed then Engine.wal_sync sh.engine;
  let finish_ns = now_ns () in
  let outcome =
    match status with
    | Engine.Committed ->
      Metrics.record_commit ~wait_ns ~level sh.metrics
        ~latency_ns:(finish_ns - start_ns);
      emit sh ~tid Trace.Event.Commit;
      Recorder.Committed
    | Engine.Aborted reason ->
      Metrics.record_abort ~level sh.metrics reason;
      emit sh ~tid
        (Trace.Event.Abort { reason = Metrics.abort_reason_slug reason });
      Recorder.Aborted reason
    | Engine.Active ->
      raise (Stuck (Fmt.str "T%d still active after its session ended" tid))
  in
  Recorder.record sh.recorder ~job ~name ~level ~tid ~attempt ~worker
    ~start_ns ~finish_ns outcome;
  (* As in [run_attempt]: the session front-end reads env mid-transaction
     and finishes last, so nothing will query this tid again. *)
  with_aux_exclusion sh ~tid (fun () -> Engine.forget sh.engine tid);
  outcome

let exec_note_wait t ~slept_ns =
  Metrics.record_wait_ns t.esh.metrics slept_ns

let exec_note_retry t ~wall_ns =
  Metrics.record_retry_overhead_ns t.esh.metrics wall_ns;
  Metrics.record_retry t.esh.metrics

let exec_note_giveup t ~wall_ns =
  Metrics.record_retry_overhead_ns t.esh.metrics wall_ns;
  Metrics.record_giveup t.esh.metrics

let exec_finalize t = collect_result t.ecfg t.esh
