(** The live serializability oracle: after a parallel run, the recorded
    history is handed to the paper's machinery — well-formedness, the
    conflict-serializability test (MVSG / one-copy serializability for
    multiversion traces) and every phenomenon detector (P0–P4, P4C,
    A1–A3, A5A, A5B). At a serializable level a correct engine must come
    back {!clean}; at weaker levels the verdict documents exactly which
    anomalies the concurrency actually produced.

    The detectors match the paper's single-version templates, so the
    verdict distinguishes {!patterns} from {!anomalies}: a locking
    scheduler prevents the P0–P3 patterns outright (Remark 5), while
    timestamp-ordering and multiversion schedulers admit pattern
    instances in perfectly serializable executions — the paper's central
    observation. On multiversion traces witnesses are additionally
    refined with the recorded version information (a snapshot read of an
    old version is not a dirty or fuzzy read; a "lost" update is only
    lost if the overwritten writer committed), following §4.2's argument
    that Snapshot Isolation cannot be judged in single-version
    vocabulary.

    Sampling caveat: a stress run is evidence, not proof — it explores
    the interleavings the hardware happened to produce, where the
    deterministic [Sim] enumeration explores all of them on small
    scenarios. The two are complementary: [Sim] validates the theory
    exhaustively at toy scale, the oracle validates the engines at real
    scale. *)

type t = {
  actions : int;
  txns : int;
  committed : int;
  aborted : int;
  well_formed : (unit, string) result;
  multiversion : bool;  (** analyzed with the MV machinery *)
  serializable : bool;
  cycle : History.Action.txn list option;  (** a dependency cycle, if any *)
  phenomena : (Phenomena.Phenomenon.t * int) list;
      (** phenomena present, with witness counts (version-refined on
          multiversion traces) *)
  witnesses : Phenomena.Detect.witness list;
      (** a few, anomalies first, for display *)
  window : int option;
      (** [Some n] — the detectors ran over sliding [n]-transaction
          windows: anomalies are sound (each reported one is real) and
          counts are per-window lower bounds. Serializability is {e not}
          windowed: it is always decided on the full history by an
          incremental-graph replay ({!Certifier.replay}), so a
          dependency cycle spanning windows is still caught. *)
}

val check :
  ?phenomena:Phenomena.Phenomenon.t list -> ?window:int -> History.t -> t
(** [phenomena] restricts the detectors (they are polynomial in history
    size; restrict for very large traces). Default: all.

    [window] slides a window of [max 2 n] transactions — completion
    order, 50% overlap — over the history and merges the per-window
    detector verdicts (phenomenon counts merge by max, so overlaps never
    double-count a witness pair); the serializability verdict and its
    cycle witness still come from a full-history incremental replay.
    Turns the post-run detectors from polynomial in the whole run into
    polynomial in the window. *)

val anomalies : t -> (Phenomena.Phenomenon.t * int) list
(** The phenomena that are anomalies proper (A1–A3, P4, P4C, A5A, A5B):
    data actually corrupted or observed inconsistent. *)

val patterns : t -> (Phenomena.Phenomenon.t * int) list
(** The broad P0–P3 template matches. A pattern instance in a
    serializable history is not a bug — non-locking schedulers admit
    them by design — but under a locking scheduler at SERIALIZABLE even
    the patterns must be absent ({!pattern_free}). *)

val clean : t -> bool
(** Well-formed, serializable, and free of every checked anomaly — the
    correctness bar for any engine promising serializability. *)

val pattern_free : t -> bool
(** {!clean} and not even a P0–P3 pattern matched — the stronger bar a
    two-phase-locking SERIALIZABLE execution must meet, since locking
    prevents the patterns themselves. *)

val pp : t Fmt.t

val to_json : t -> string

(** {1 The mixed-level verdict}

    Under a per-transaction level mix there is no run-global bar:
    each detector witness is attributed to its victim role(s)
    ({!Phenomena.Detect.victims}) and judged against the victim's own
    declared level. A Table-4 [Not_possible] cell is a violation;
    anything else is an anomaly the victim's level permits — the
    anomaly × victim-level matrix. The mixed certifier replay
    ({!Certifier.replay} with [~criterion:Mixed]) rides along for the
    cycles no two-transaction template names. *)

type mixed = {
  m_tagged : int;  (** transactions with a declared level *)
  m_matrix : ((Isolation.Level.t * Phenomena.Phenomenon.t) * int) list;
      (** permitted anomalies per committed victim's level *)
  m_violations : ((Isolation.Level.t * Phenomena.Phenomenon.t) * int) list;
      (** attributions forbidden at the victim's own level *)
  m_harmed : int;  (** certifier-replay harm (cycles beyond templates) *)
  m_tolerated : int;  (** certifier-replay cycles harming no member *)
  m_clean : bool;
      (** well-formed, no forbidden attribution, certifier [mixed_ok] —
          every transaction got exactly the protection it declared *)
}

val check_mixed :
  ?phenomena:Phenomena.Phenomenon.t list ->
  levels:(History.Action.txn * Isolation.Level.t) list ->
  History.t ->
  mixed
(** Victims missing from [levels] are judged as SERIALIZABLE (the
    conservative default, matching {!Certifier.note_level}); victims
    that never committed are skipped. *)

val pp_mixed : mixed Fmt.t

val mixed_to_json : mixed -> string
