(* Lock table for the locking scheduler (§2.3).

   Locks come in Read (Share) and Write (Exclusive) modes, on data items or
   on predicates. A Write item lock carries its before and after images so
   that conflicts against Read predicate locks implement the paper's
   phantom rule: a predicate lock covers present data items *and* any the
   write would cause to satisfy the predicate.

   The table only decides grant/conflict; durations are the caller's
   policy (Table 2) and are expressed as tags used for bulk release:
   [Short] locks are released after the action, [Cursor] locks when the
   cursor moves, [Long] locks at end of transaction. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type request =
  | Read_item of key
  | Update_item of key
      (* U mode: taken by for-update fetches intending to write. Compatible
         with Read locks, incompatible with other Update or Write locks —
         the classical cure for upgrade deadlocks. *)
  | Write_item of { k : key; before : value option; after : value option }
  | Read_pred of Storage.Predicate.t
  | Write_pred of Storage.Predicate.t

let pp_request ppf = function
  | Read_item k -> Fmt.pf ppf "S(%s)" k
  | Update_item k -> Fmt.pf ppf "U(%s)" k
  | Write_item { k; _ } -> Fmt.pf ppf "X(%s)" k
  | Read_pred p -> Fmt.pf ppf "S<%a>" Storage.Predicate.pp p
  | Write_pred p -> Fmt.pf ppf "X<%a>" Storage.Predicate.pp p

type tag = Short | Cursor of string | Long

type entry = { owner : txn; req : request; tag : tag }

(* The audit log: every grant and release, in order. Lets tests check the
   paper's two-phase property against actual engine behavior. *)
type event =
  | Acquired of { owner : txn; req : request; tag : tag }
  | Released of { owner : txn; count : int }

type stats = { grants : int; conflicts : int; releases : int; upgrades : int }

(* Live observation hook: fired synchronously on every grant decision,
   refusal and release, with the upgrade flag the counters see. The
   runtime's tracing layer installs one to put lock traffic on the
   per-transaction timeline; [None] (the default) costs one branch. *)
type hook =
  | On_grant of { owner : txn; req : request; tag : tag; upgrade : bool }
  | On_conflict of { owner : txn; req : request; upgrade : bool; holders : txn list }
  | On_release of { owner : txn; count : int }

type t = {
  mutable entries : entry list;
  mutable events : event list; (* newest first *)
  mutable grants : int;     (* grant decisions, including redundant covers *)
  mutable conflicts : int;  (* acquire attempts refused by a holder *)
  mutable releases : int;   (* lock entries dropped by release/release_all *)
  mutable upgrades : int;   (* write requests over an own weaker lock *)
  mutable hook : (hook -> unit) option;
}

let create () =
  { entries = []; events = []; grants = 0; conflicts = 0; releases = 0;
    upgrades = 0; hook = None }

let set_hook t f = t.hook <- Some f
let clear_hook t = t.hook <- None
let notify t h = match t.hook with None -> () | Some f -> f h

let events t = List.rev t.events

let stats t =
  { grants = t.grants; conflicts = t.conflicts; releases = t.releases;
    upgrades = t.upgrades }

(* Do two granted/requested locks conflict? Two locks by different
   transactions conflict if at least one is a Write lock and they cover a
   common (possibly phantom) data item. *)
let requests_conflict a b =
  let item_vs_pred k ~before ~after p =
    Storage.Predicate.affected_by_write p k ~before ~after
  in
  match (a, b) with
  | Read_item _, Read_item _ | Read_item _, Read_pred _
  | Read_pred _, Read_item _ | Read_pred _, Read_pred _ ->
    false
  (* U is compatible with readers but excludes other updaters/writers. *)
  | Update_item _, Read_item _ | Read_item _, Update_item _ -> false
  | Update_item k1, Update_item k2 -> k1 = k2
  | Update_item k, Write_item { k = k'; _ } | Write_item { k = k'; _ }, Update_item k ->
    k = k'
  | Update_item _, Read_pred _ | Read_pred _, Update_item _ ->
    (* A U lock intends to write but has not yet; predicate readers only
       conflict with the eventual Write lock. *)
    false
  | Write_item { k = k1; _ }, Write_item { k = k2; _ } -> k1 = k2
  | Write_item { k; _ }, Read_item k' | Read_item k', Write_item { k; _ } ->
    k = k'
  | Write_item { k; before; after }, Read_pred p
  | Read_pred p, Write_item { k; before; after } ->
    item_vs_pred k ~before ~after p
  (* Predicate Write locks are not issued by the engines in this
     repository; conflicts involving them are decided conservatively. *)
  | Write_pred _, (Read_pred _ | Write_pred _ | Write_item _ | Update_item _)
  | (Read_pred _ | Write_item _ | Update_item _), Write_pred _ ->
    true
  | Write_pred _, Read_item _ | Read_item _, Write_pred _ -> true

(* Does a lock already held by [owner] make [req] redundant? Holding a
   Write item lock covers further reads and writes of the same item. *)
let covers held req =
  match (held, req) with
  | Read_item k, Read_item k' -> k = k'
  | Update_item k, (Read_item k' | Update_item k') -> k = k'
  | Write_item { k; _ },
    (Read_item k' | Update_item k' | Write_item { k = k'; _ }) ->
    k = k'
  | Read_pred p, Read_pred q | Write_pred p, (Read_pred q | Write_pred q) ->
    p.Storage.Predicate.name = q.Storage.Predicate.name
  | _ -> false

type verdict = Granted | Conflict of txn list

(* A lock *upgrade*: a Write request on an item the owner already covers
   only with a weaker (Read or Update) lock — the paper's canonical
   deadlock trigger (two transactions read x, then both try to write it).
   Counted on the request, granted or refused: the refused ones are the
   upgrade storm. *)
let is_upgrade table ~owner req =
  match req with
  | Write_item { k; _ } ->
    let holds pred = List.exists (fun e -> e.owner = owner && pred e.req) table.entries in
    holds (function
      | Read_item k' | Update_item k' -> k' = k
      | _ -> false)
    && not (holds (function Write_item { k = k'; _ } -> k' = k | _ -> false))
  | _ -> false

let acquire table ~owner ~tag req =
  let upgrade = is_upgrade table ~owner req in
  if upgrade then table.upgrades <- table.upgrades + 1;
  let conflicting =
    List.filter
      (fun e -> e.owner <> owner && requests_conflict e.req req)
      table.entries
  in
  match conflicting with
  | _ :: _ ->
    table.conflicts <- table.conflicts + 1;
    let holders =
      List.sort_uniq compare (List.map (fun e -> e.owner) conflicting)
    in
    notify table (On_conflict { owner; req; upgrade; holders });
    Conflict holders
  | [] ->
    (* Promote rather than duplicate: an identical or covering lock with a
       duration at least as long needs no new entry. Write item locks are
       special: each write carries fresh before/after images that predicate
       conflict checks must see, so only an image-identical entry is
       redundant — a second write of the same key adds its own entry. *)
    let tag_rank = function Short -> 0 | Cursor _ -> 1 | Long -> 2 in
    let subsumes held =
      match (held, req) with
      | _, Write_item _ -> held = req
      | _ -> covers held req
    in
    let redundant =
      List.exists
        (fun e -> e.owner = owner && subsumes e.req && tag_rank e.tag >= tag_rank tag)
        table.entries
    in
    if not redundant then begin
      table.entries <- { owner; req; tag } :: table.entries;
      table.events <- Acquired { owner; req; tag } :: table.events
    end;
    table.grants <- table.grants + 1;
    notify table (On_grant { owner; req; tag; upgrade });
    Granted

let release table ~owner ~tag =
  let keep, dropped =
    List.partition (fun e -> not (e.owner = owner && e.tag = tag)) table.entries
  in
  table.entries <- keep;
  if dropped <> [] then begin
    let count = List.length dropped in
    table.releases <- table.releases + count;
    table.events <- Released { owner; count } :: table.events;
    notify table (On_release { owner; count })
  end

let release_all table ~owner =
  let keep, dropped = List.partition (fun e -> e.owner <> owner) table.entries in
  table.entries <- keep;
  if dropped <> [] then begin
    let count = List.length dropped in
    table.releases <- table.releases + count;
    table.events <- Released { owner; count } :: table.events;
    notify table (On_release { owner; count })
  end

let held table ~owner =
  List.filter_map
    (fun e -> if e.owner = owner then Some (e.req, e.tag) else None)
    table.entries

let owners table =
  List.sort_uniq compare (List.map (fun e -> e.owner) table.entries)

let is_empty table = table.entries = []

let pp ppf table =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:sp (fun ppf e ->
          Fmt.pf ppf "T%d:%a" e.owner pp_request e.req))
    table.entries
