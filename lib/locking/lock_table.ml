(* Lock table for the locking scheduler (§2.3).

   Locks come in Read (Share) and Write (Exclusive) modes, on data items or
   on predicates. A Write item lock carries its before and after images so
   that conflicts against Read predicate locks implement the paper's
   phantom rule: a predicate lock covers present data items *and* any the
   write would cause to satisfy the predicate.

   The table only decides grant/conflict; durations are the caller's
   policy (Table 2) and are expressed as tags used for bulk release:
   [Short] locks are released after the action, [Cursor] locks when the
   cursor moves, [Long] locks at end of transaction.

   Striping. Item locks are partitioned into [stripes] buckets by key
   hash ({!Storage.Shard.of_key}); predicate locks live in one dedicated
   bucket, because a predicate covers keys in every stripe. The table
   itself takes no locks — the runtime's pool guarantees that an
   operation only touches buckets whose stripe mutexes it holds:

   - an item request reads and writes only the key's bucket, plus a read
     of the predicate bucket (a Write item lock must see predicate
     readers — the phantom rule). Writers therefore hold the key stripe
     and the predicate stripe, acquired in that order; plain readers
     hold just the key stripe, and their predicate-bucket read is safe
     because every predicate-bucket *mutation* happens under all stripes
     (predicate locks are only taken by scans, which hold everything).
   - a predicate request reads every bucket (a predicate reader
     conflicts with item writers anywhere), so its caller holds every
     stripe.

   Shared counters are atomics; the audit log — an exact interleaved
   order of grants and releases, which only single-threaded harnesses
   consume — is kept under a private mutex and can be disabled
   ([~audit:false]) so the striped hot path shares no list. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type request =
  | Read_item of key
  | Update_item of key
      (* U mode: taken by for-update fetches intending to write. Compatible
         with Read locks, incompatible with other Update or Write locks —
         the classical cure for upgrade deadlocks. *)
  | Write_item of { k : key; before : value option; after : value option }
  | Read_pred of Storage.Predicate.t
  | Write_pred of Storage.Predicate.t

let pp_request ppf = function
  | Read_item k -> Fmt.pf ppf "S(%s)" k
  | Update_item k -> Fmt.pf ppf "U(%s)" k
  | Write_item { k; _ } -> Fmt.pf ppf "X(%s)" k
  | Read_pred p -> Fmt.pf ppf "S<%a>" Storage.Predicate.pp p
  | Write_pred p -> Fmt.pf ppf "X<%a>" Storage.Predicate.pp p

type tag = Short | Cursor of string | Long

type entry = { owner : txn; req : request; tag : tag }

type bucket = { mutable entries : entry list }

(* The audit log: every grant and release, in order. Lets tests check the
   paper's two-phase property against actual engine behavior. *)
type event =
  | Acquired of { owner : txn; req : request; tag : tag }
  | Released of { owner : txn; count : int }

type stats = { grants : int; conflicts : int; releases : int; upgrades : int }

(* Live observation hook: fired synchronously on every grant decision,
   refusal and release, with the upgrade flag the counters see. The
   runtime's tracing layer installs one to put lock traffic on the
   per-transaction timeline; [None] (the default) costs one branch. *)
type hook =
  | On_grant of { owner : txn; req : request; tag : tag; upgrade : bool }
  | On_conflict of { owner : txn; req : request; upgrade : bool; holders : txn list }
  | On_release of { owner : txn; count : int }

type t = {
  stripes : int;
  buckets : bucket array;      (* item locks, by key hash *)
  pred : bucket;               (* predicate locks, one dedicated bucket *)
  audit : bool;
  audit_m : Mutex.t;
  mutable events : event list; (* newest first; under audit_m *)
  grants : int Atomic.t;     (* grant decisions, including redundant covers *)
  conflicts : int Atomic.t;  (* acquire attempts refused by a holder *)
  releases : int Atomic.t;   (* lock entries dropped by release/release_all *)
  upgrades : int Atomic.t;   (* write requests over an own weaker lock *)
  mutable hook : (hook -> unit) option;
}

let create ?(stripes = 1) ?(audit = true) () =
  let stripes = max 1 stripes in
  {
    stripes;
    buckets = Array.init stripes (fun _ -> { entries = [] });
    pred = { entries = [] };
    audit;
    audit_m = Mutex.create ();
    events = [];
    grants = Atomic.make 0;
    conflicts = Atomic.make 0;
    releases = Atomic.make 0;
    upgrades = Atomic.make 0;
    hook = None;
  }

let stripes t = t.stripes
let bucket_of_key t k = Storage.Shard.of_key ~shards:t.stripes k

(* Bucket indices [0 .. stripes - 1] are the item buckets; index
   [stripes] names the predicate bucket (mirroring the pool's convention
   that the predicate stripe is the last, highest-ordered stripe). *)
let pred_bucket t = t.stripes

let bucket t i = if i >= t.stripes then t.pred else t.buckets.(i)

let bucket_of_req t = function
  | Read_item k | Update_item k | Write_item { k; _ } -> bucket_of_key t k
  | Read_pred _ | Write_pred _ -> pred_bucket t

let set_hook t f = t.hook <- Some f
let clear_hook t = t.hook <- None
let notify t h = match t.hook with None -> () | Some f -> f h

let log_event t e =
  if t.audit then begin
    Mutex.lock t.audit_m;
    t.events <- e :: t.events;
    Mutex.unlock t.audit_m
  end

let events t =
  Mutex.lock t.audit_m;
  let es = t.events in
  Mutex.unlock t.audit_m;
  List.rev es

let stats t =
  { grants = Atomic.get t.grants; conflicts = Atomic.get t.conflicts;
    releases = Atomic.get t.releases; upgrades = Atomic.get t.upgrades }

(* Do two granted/requested locks conflict? Two locks by different
   transactions conflict if at least one is a Write lock and they cover a
   common (possibly phantom) data item. *)
let requests_conflict a b =
  let item_vs_pred k ~before ~after p =
    Storage.Predicate.affected_by_write p k ~before ~after
  in
  match (a, b) with
  | Read_item _, Read_item _ | Read_item _, Read_pred _
  | Read_pred _, Read_item _ | Read_pred _, Read_pred _ ->
    false
  (* U is compatible with readers but excludes other updaters/writers. *)
  | Update_item _, Read_item _ | Read_item _, Update_item _ -> false
  | Update_item k1, Update_item k2 -> k1 = k2
  | Update_item k, Write_item { k = k'; _ } | Write_item { k = k'; _ }, Update_item k ->
    k = k'
  | Update_item _, Read_pred _ | Read_pred _, Update_item _ ->
    (* A U lock intends to write but has not yet; predicate readers only
       conflict with the eventual Write lock. *)
    false
  | Write_item { k = k1; _ }, Write_item { k = k2; _ } -> k1 = k2
  | Write_item { k; _ }, Read_item k' | Read_item k', Write_item { k; _ } ->
    k = k'
  | Write_item { k; before; after }, Read_pred p
  | Read_pred p, Write_item { k; before; after } ->
    item_vs_pred k ~before ~after p
  (* Predicate Write locks are not issued by the engines in this
     repository; conflicts involving them are decided conservatively. *)
  | Write_pred _, (Read_pred _ | Write_pred _ | Write_item _ | Update_item _)
  | (Read_pred _ | Write_item _ | Update_item _), Write_pred _ ->
    true
  | Write_pred _, Read_item _ | Read_item _, Write_pred _ -> true

(* Does a lock already held by [owner] make [req] redundant? Holding a
   Write item lock covers further reads and writes of the same item. *)
let covers held req =
  match (held, req) with
  | Read_item k, Read_item k' -> k = k'
  | Update_item k, (Read_item k' | Update_item k') -> k = k'
  | Write_item { k; _ },
    (Read_item k' | Update_item k' | Write_item { k = k'; _ }) ->
    k = k'
  | Read_pred p, Read_pred q | Write_pred p, (Read_pred q | Write_pred q) ->
    p.Storage.Predicate.name = q.Storage.Predicate.name
  | _ -> false

type verdict = Granted | Conflict of txn list

(* A lock *upgrade*: a Write request on an item the owner already covers
   only with a weaker (Read or Update) lock — the paper's canonical
   deadlock trigger (two transactions read x, then both try to write it).
   Counted on the request, granted or refused: the refused ones are the
   upgrade storm. *)
let is_upgrade t ~owner req =
  match req with
  | Write_item { k; _ } ->
    let entries = (bucket t (bucket_of_key t k)).entries in
    let holds pred = List.exists (fun e -> e.owner = owner && pred e.req) entries in
    holds (function
      | Read_item k' | Update_item k' -> k' = k
      | _ -> false)
    && not (holds (function Write_item { k = k'; _ } -> k' = k | _ -> false))
  | _ -> false

(* The buckets whose existing entries can conflict with [req]: the
   request's own bucket, plus the predicate bucket for item requests
   (phantom rule and conservative Write_pred handling), plus every item
   bucket for predicate requests (a predicate covers all stripes). *)
let conflict_entries t req =
  match req with
  | Read_item _ | Update_item _ | Write_item _ ->
    let own = (bucket t (bucket_of_req t req)).entries in
    if t.pred.entries == [] then own else own @ t.pred.entries
  | Read_pred _ | Write_pred _ ->
    Array.fold_left (fun acc b -> acc @ b.entries) t.pred.entries t.buckets

let acquire t ~owner ~tag req =
  let upgrade = is_upgrade t ~owner req in
  if upgrade then Atomic.incr t.upgrades;
  let conflicting =
    List.filter
      (fun e -> e.owner <> owner && requests_conflict e.req req)
      (conflict_entries t req)
  in
  match conflicting with
  | _ :: _ ->
    Atomic.incr t.conflicts;
    let holders =
      List.sort_uniq compare (List.map (fun e -> e.owner) conflicting)
    in
    notify t (On_conflict { owner; req; upgrade; holders });
    Conflict holders
  | [] ->
    (* Promote rather than duplicate: an identical or covering lock with a
       duration at least as long needs no new entry. Write item locks are
       special: each write carries fresh before/after images that predicate
       conflict checks must see, so only an image-identical entry is
       redundant — a second write of the same key adds its own entry. *)
    let tag_rank = function Short -> 0 | Cursor _ -> 1 | Long -> 2 in
    let subsumes held =
      match (held, req) with
      | _, Write_item _ -> held = req
      | _ -> covers held req
    in
    let b = bucket t (bucket_of_req t req) in
    let redundant =
      List.exists
        (fun e -> e.owner = owner && subsumes e.req && tag_rank e.tag >= tag_rank tag)
        b.entries
    in
    if not redundant then begin
      b.entries <- { owner; req; tag } :: b.entries;
      log_event t (Acquired { owner; req; tag })
    end;
    Atomic.incr t.grants;
    notify t (On_grant { owner; req; tag; upgrade });
    Granted

(* Drop [owner]'s entries matching [keep_if] from the buckets in [scope]
   ([None] = every bucket). Striped callers must scope a release to
   buckets whose stripes they hold; the engine's step-local [Short] and
   [Cursor] releases pass exactly the step's stripe footprint, and
   end-of-transaction [release_all] runs with every stripe held. *)
let release_matching t ~owner ~scope matches =
  let indices =
    match scope with
    | Some is -> List.sort_uniq compare is
    | None -> List.init (t.stripes + 1) Fun.id
  in
  let dropped = ref 0 in
  List.iter
    (fun i ->
      let b = bucket t i in
      let keep, gone =
        List.partition
          (fun e -> not (e.owner = owner && matches e.tag))
          b.entries
      in
      if gone <> [] then begin
        b.entries <- keep;
        dropped := !dropped + List.length gone
      end)
    indices;
  if !dropped > 0 then begin
    let count = !dropped in
    ignore (Atomic.fetch_and_add t.releases count);
    log_event t (Released { owner; count });
    notify t (On_release { owner; count })
  end

let release ?scope t ~owner ~tag =
  release_matching t ~owner ~scope (fun tg -> tg = tag)

let release_all t ~owner = release_matching t ~owner ~scope:None (fun _ -> true)

let all_entries t =
  Array.fold_left (fun acc b -> acc @ b.entries) t.pred.entries t.buckets

let held t ~owner =
  List.filter_map
    (fun e -> if e.owner = owner then Some (e.req, e.tag) else None)
    (all_entries t)

let owners t =
  List.sort_uniq compare (List.map (fun e -> e.owner) (all_entries t))

let is_empty t = all_entries t = []

let pp ppf t =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:sp (fun ppf e ->
          Fmt.pf ppf "T%d:%a" e.owner pp_request e.req))
    (all_entries t)
