(** Lock table for the locking scheduler (§2.3 of the paper): Read/Write
    locks on data items and predicates, with the paper's phantom rule — a
    Write item lock (carrying before and after images) conflicts with a
    Read predicate lock whenever the write affects the predicate.

    Durations are the caller's policy (Table 2), expressed as tags for
    bulk release.

    The table can be {e striped}: item locks are partitioned into
    [stripes] buckets by key hash ({!Storage.Shard.of_key}); predicate
    locks live in one dedicated bucket. The table takes no locks itself —
    a striped caller must hold the stripe mutexes covering the buckets an
    operation touches (see the runtime's pool for the discipline). With
    the default single stripe every operation touches one item bucket and
    the table behaves exactly as before striping. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type request =
  | Read_item of key
  | Update_item of key
      (** U mode: taken by for-update fetches. Compatible with Read locks,
          incompatible with other Update or Write locks — the classical
          cure for upgrade deadlocks. *)
  | Write_item of { k : key; before : value option; after : value option }
  | Read_pred of Storage.Predicate.t
  | Write_pred of Storage.Predicate.t

val pp_request : request Fmt.t

val requests_conflict : request -> request -> bool
(** Conflict between locks of different owners: at least one Write, common
    (possibly phantom) item. Symmetric. *)

type tag =
  | Short            (** released immediately after the action *)
  | Cursor of string (** released when the named cursor moves or closes *)
  | Long             (** released at end of transaction *)

type t

val create : ?stripes:int -> ?audit:bool -> unit -> t
(** [create ~stripes ~audit ()] makes a table with [max 1 stripes] item
    buckets (default 1). [~audit:false] disables the {!events} audit log,
    whose single shared list would otherwise serialize striped callers;
    counters and hooks still fire. *)

val stripes : t -> int

val bucket_of_key : t -> key -> int
(** The item bucket a key's locks live in — {!Storage.Shard.of_key} over
    this table's stripe count. *)

val pred_bucket : t -> int
(** The index naming the predicate bucket in release scopes: [stripes t],
    one past the last item bucket — mirroring the runtime's convention
    that the predicate stripe is the last, highest-ordered stripe. *)

(** The audit log: every grant and release, in order. *)
type event =
  | Acquired of { owner : txn; req : request; tag : tag }
  | Released of { owner : txn; count : int }

val events : t -> event list

type stats = { grants : int; conflicts : int; releases : int; upgrades : int }
(** Cumulative lock-table traffic: grant decisions (including redundant
    covers), refused acquire attempts, entries dropped by releases, and
    lock {e upgrades} — Write requests on an item the owner so far covers
    only with a Read or Update lock, the paper's canonical deadlock
    trigger. Upgrades are counted per request, granted or refused: the
    refused ones are the 2PL upgrade storm. *)

val stats : t -> stats

(** Live observation hook: fired synchronously on every grant decision,
    refusal and release. The runtime's tracing layer installs one to put
    lock traffic on per-transaction timelines; the default ([None])
    costs one branch per operation. *)
type hook =
  | On_grant of { owner : txn; req : request; tag : tag; upgrade : bool }
  | On_conflict of { owner : txn; req : request; upgrade : bool; holders : txn list }
  | On_release of { owner : txn; count : int }

val set_hook : t -> (hook -> unit) -> unit
val clear_hook : t -> unit

type verdict = Granted | Conflict of txn list

val acquire : t -> owner:txn -> tag:tag -> request -> verdict
(** Grant unless a conflicting lock is held by another transaction; on
    conflict, report the blockers. Locks already held by the owner that
    cover the request are promoted rather than duplicated. *)

val release : ?scope:int list -> t -> owner:txn -> tag:tag -> unit
(** Drop the owner's entries carrying [tag]. [?scope] restricts the
    release to the named buckets (item bucket indices and/or
    [pred_bucket]); a striped caller must scope step-local releases to
    buckets whose stripes it holds. [None] (the default) sweeps every
    bucket. *)

val release_all : t -> owner:txn -> unit
(** Drop every entry of the owner, across all buckets — end of
    transaction; a striped caller runs this with every stripe held. *)

val held : t -> owner:txn -> (request * tag) list
val owners : t -> txn list
val is_empty : t -> bool
val pp : t Fmt.t
